// Chaos suite: full loopback campaigns through the seeded fault-injecting
// socket shim — deterministic drops, partial writes, short reads, delays,
// bit corruption and abrupt resets under EVERY service send/recv — and
// the result must still be byte-identical to single-host
// run_netlist_campaign every time. Also the crash-durability gate: a
// daemon hard-killed mid-campaign, restarted on the same address and
// store, must resume from its shard journal and produce the exact same
// bytes with shards_resumed > 0.
//
// Seeding follows the fuzz-suite convention: SCK_CHAOS_SEED rotates the
// fault schedule (CI derives it from the run number) and the seed in use
// is echoed so any failure reproduces with one env var.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hls/builder.h"
#include "hls/netlist_campaign.h"
#include "netlist_test_util.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/worker.h"

namespace sck::service {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::uint64_t base_seed() {
  if (const char* s = std::getenv("SCK_CHAOS_SEED")) {
    const std::uint64_t seed = std::strtoull(s, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 1;
}

// ---- env-knob parsing ------------------------------------------------------

TEST(ChaosEnv, WellFormedSpecsInstall) {
  ASSERT_EQ(setenv("SCK_CHAOS", "corrupt=5,drop=2,max_delay_ms=0", 1), 0);
  ASSERT_EQ(setenv("SCK_CHAOS_SEED", "42", 1), 0);
  EXPECT_TRUE(install_chaos_from_env());
  EXPECT_TRUE(chaos_enabled());
  EXPECT_EQ(chaos_seed(), 42u);
  clear_chaos();
  ASSERT_EQ(setenv("SCK_CHAOS", "on", 1), 0);
  EXPECT_TRUE(install_chaos_from_env());
  clear_chaos();
  ASSERT_EQ(unsetenv("SCK_CHAOS"), 0);
  ASSERT_EQ(unsetenv("SCK_CHAOS_SEED"), 0);
  EXPECT_FALSE(install_chaos_from_env());
}

TEST(ChaosEnv, MalformedSpecsAbortInsteadOfRunningChaosOff) {
  // The one failure mode a fault-injection harness must not have: a typo'd
  // rate silently parsing to 0 (the old std::atoi behaviour) and the chaos
  // suite passing with the injection OFF.
  for (const char* bad :
       {"corrupt=lots", "corrupt", "corupt=5", "drop=", "drop=-1",
        "corrupt=5,drop=oops", "delay=3ms"}) {
    ASSERT_EQ(setenv("SCK_CHAOS", bad, 1), 0);
    EXPECT_DEATH((void)install_chaos_from_env(), "SCK_CHAOS")
        << "SCK_CHAOS=\"" << bad << "\"";
  }
  ASSERT_EQ(setenv("SCK_CHAOS", "1", 1), 0);
  for (const char* bad : {"nope", "12x", "-3"}) {
    ASSERT_EQ(setenv("SCK_CHAOS_SEED", bad, 1), 0);
    EXPECT_DEATH((void)install_chaos_from_env(), "SCK_CHAOS_SEED")
        << "SCK_CHAOS_SEED=\"" << bad << "\"";
  }
  ASSERT_EQ(unsetenv("SCK_CHAOS"), 0);
  ASSERT_EQ(unsetenv("SCK_CHAOS_SEED"), 0);
}

/// Same 1776-job / 4-shard fixture as test_service.cpp.
struct ChaosDesign {
  hls::Dfg graph;
  hls::Netlist netlist;

  ChaosDesign() {
    graph = hls::ced(hls::build_fir(hls::FirSpec{{1, 2, 3}, 4}),
                     hls::CedStyle::kClassBased);
    netlist = hls::synthesize(graph, hls::ResourceConstraints::min_area(),
                              "chaos_fixture");
  }

  ChaosDesign(const ChaosDesign&) = delete;
  ChaosDesign& operator=(const ChaosDesign&) = delete;
};

[[nodiscard]] hls::NetlistCampaignOptions campaign_options() {
  hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.stream = hls::StreamMode::kShared;
  opt.backend = hls::NetlistBackend::kIncremental;
  opt.threads = 1;
  return opt;
}

/// Timeouts tuned for a hostile transport: the daemon ages out wedged
/// shards fast, clients presume a silent daemon wedged fast, workers
/// redial fast — so every injected stall recovers in test time.
[[nodiscard]] ServiceOptions chaos_service_options(const std::string& dir) {
  ServiceOptions so;
  so.heartbeat_timeout = 2.0;
  so.store_dir = dir;
  return so;
}

[[nodiscard]] ClientOptions chaos_client_options() {
  ClientOptions co;
  co.total_timeout = 120.0;
  co.idle_timeout = 3.0;
  return co;
}

/// Like test_service.cpp's ServiceHarness, plus what chaos needs: the
/// daemon lives behind a unique_ptr so it can be hard-killed and
/// restarted on the same address, and teardown clears the chaos shim
/// BEFORE shutting down so the farewell handshake is not itself chaosed.
class ChaosHarness {
 public:
  explicit ChaosHarness(ServiceOptions options) : options_(options) {
    start_daemon();
  }

  ~ChaosHarness() {
    clear_chaos();
    kill_daemon(/*hard=*/false);
    for (std::thread& t : workers_) t.join();
  }

  void add_worker(WorkerOptions wo) {
    wo.connect = daemon_->address();
    if (wo.threads == 0) wo.threads = 1;
    wo.reconnect = true;
    wo.heartbeat_interval = 0.2;
    wo.connect_timeout = 3.0;
    const std::uint64_t before = daemon_->counters().workers_joined;
    workers_.emplace_back([wo] { (void)run_worker(wo); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (daemon_->counters().workers_joined < before + 1) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "worker never joined";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void add_workers(int count) {
    for (int w = 0; w < count; ++w) {
      WorkerOptions wo;
      wo.name = "chaos-worker-" + std::to_string(workers_.size());
      add_worker(wo);
    }
  }

  [[nodiscard]] std::optional<ServiceCampaignResult> submit(
      const ChaosDesign& design, const hls::NetlistCampaignOptions& opt) {
    std::string error;
    std::optional<ServiceCampaignResult> got = run_remote_campaign(
        daemon_->address(), design.graph, design.netlist, opt, &error,
        chaos_client_options());
    EXPECT_TRUE(got.has_value()) << error;
    return got;
  }

  /// SIGKILL equivalent: no farewell to anyone, journals left on disk,
  /// listen socket torn down (destroying the daemon closes it, so workers
  /// and clients see refused connections until restart()).
  void kill_daemon(bool hard = true) {
    if (!daemon_) return;
    hard ? daemon_->stop_hard() : daemon_->stop();
    loop_.join();
    daemon_.reset();
  }

  /// Bring a fresh daemon up on the SAME address and store — only unix
  /// addresses make that deterministic (listen_on unlinks the stale file).
  void restart() { start_daemon(); }

  [[nodiscard]] CampaignDaemon& daemon() { return *daemon_; }

 private:
  void start_daemon() {
    daemon_ = std::make_unique<CampaignDaemon>(options_);
    std::string error;
    ASSERT_TRUE(daemon_->start(&error)) << error;
    loop_ = std::thread([this] { daemon_->run(); });
  }

  ServiceOptions options_;
  std::unique_ptr<CampaignDaemon> daemon_;
  std::thread loop_;
  std::vector<std::thread> workers_;
};

// ---- chaos transport, byte-identity at 1/2/4 workers -----------------------

TEST(ServiceChaos, ByteIdenticalThroughChaosAtWorkerCounts124) {
  const ChaosDesign design;
  const hls::NetlistCampaignOptions opt = campaign_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (const int workers : {1, 2, 4}) {
    const std::uint64_t seed = base_seed() + static_cast<std::uint64_t>(
                                                 workers);
    std::printf("[chaos] transport fault seed %llu (workers=%d, base "
                "SCK_CHAOS_SEED=%llu)\n",
                static_cast<unsigned long long>(seed), workers,
                static_cast<unsigned long long>(base_seed()));
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        ("sck_chaos_store_" + std::to_string(workers));
    fs::remove_all(dir);

    {
      ChaosHarness harness(chaos_service_options(dir.string()));
      harness.add_workers(workers);
      // Chaos goes live only once everyone joined: the steady-state
      // protocol (shards, results, responses, reconnects, re-submits) is
      // the machinery under test, not the test scaffolding.
      set_chaos(default_chaos(seed));
      const auto got = harness.submit(design, opt);
      clear_chaos();
      ASSERT_TRUE(got.has_value());
      EXPECT_TRUE(hls::same_campaign_result(got->result, want))
          << "diverged under chaos seed " << seed << " at " << workers
          << " worker(s)";
    }
    fs::remove_all(dir);
  }
}

// Several rotated seeds back to back at 2 workers: different fault
// schedules, same bytes, every time.
TEST(ServiceChaos, RotatedSeedsAllConvergeToTheSameBytes) {
  const ChaosDesign design;
  const hls::NetlistCampaignOptions opt = campaign_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (int round = 0; round < 3; ++round) {
    const std::uint64_t seed =
        base_seed() * 1000003ULL + static_cast<std::uint64_t>(round);
    std::printf("[chaos] rotation round %d seed %llu\n", round,
                static_cast<unsigned long long>(seed));
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("sck_chaos_rot_" + std::to_string(round));
    fs::remove_all(dir);
    {
      ChaosHarness harness(chaos_service_options(dir.string()));
      harness.add_workers(2);
      set_chaos(default_chaos(seed));
      const auto got = harness.submit(design, opt);
      clear_chaos();
      ASSERT_TRUE(got.has_value());
      EXPECT_TRUE(hls::same_campaign_result(got->result, want))
          << "diverged at rotation seed " << seed;
    }
    fs::remove_all(dir);
  }
}

// ---- the crash-durability gate ---------------------------------------------

// A worker that executes exactly 2 of the 4 shards and retires leaves the
// campaign stalled with 2 journaled shards; the daemon is then KILLED
// (stop_hard: no farewell, journal left on disk) and restarted on the
// same unix address + store with a fresh worker. The client — blocked in
// run_remote_campaign the whole time — reconnects, re-submits, and must
// get bytes identical to single-host, with exactly the 2 journaled shards
// resumed instead of recomputed.
TEST(ServiceChaos, DaemonKilledMidCampaignResumesFromJournalByteIdentical) {
  const ChaosDesign design;
  const hls::NetlistCampaignOptions opt = campaign_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  const fs::path dir = fs::path(::testing::TempDir()) / "sck_chaos_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string addr = "unix:" + (dir / "daemon.sock").string();
  ServiceOptions so = chaos_service_options((dir / "store").string());
  so.listen = addr;

  ChaosHarness harness(so);
  WorkerOptions mortal;
  mortal.name = "mortal";
  mortal.max_shards = 2;  // completes 2 shards, then retires gracefully
  harness.add_worker(mortal);

  // Submit from a background thread: the client must survive the daemon's
  // death below INSIDE one run_remote_campaign call.
  std::optional<ServiceCampaignResult> got;
  std::string client_error;
  std::thread client([&] {
    ClientOptions co = chaos_client_options();
    got = run_remote_campaign(harness.daemon().address(), design.graph,
                              design.netlist, opt, &client_error, co);
  });

  // Wait for both shards to hit the journal, then kill the daemon hard.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (harness.daemon().counters().shards_journaled < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "shards never reached the journal";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harness.kill_daemon();
  ASSERT_TRUE(fs::exists(dir / "store") && !fs::is_empty(dir / "store"))
      << "journal should survive the kill";

  harness.restart();
  WorkerOptions finisher;
  finisher.name = "finisher";
  harness.add_worker(finisher);

  client.join();
  ASSERT_TRUE(got.has_value()) << client_error;
  EXPECT_TRUE(hls::same_campaign_result(got->result, want))
      << "resumed campaign diverged from single-host";
  EXPECT_EQ(got->stats.shards_resumed, 2u);
  EXPECT_EQ(got->stats.shards_total, 4u);
  EXPECT_EQ(got->stats.shards_executed, got->stats.shards_total);
  EXPECT_GE(got->stats.shards_journaled, 2u);  // remaining shards journaled
  EXPECT_EQ(harness.daemon().counters().shards_resumed, 2u);

  // The journal is retired at finalize; only the store entry remains.
  bool journal_left = false;
  for (const auto& entry : fs::directory_iterator(dir / "store")) {
    if (entry.path().extension() == ".journal") journal_left = true;
  }
  EXPECT_FALSE(journal_left);

  fs::remove_all(dir);
}

// Same crash, but the restart happens UNDER chaos: resume + hostile
// transport at once.
TEST(ServiceChaos, KillAndResumeUnderChaosStaysByteIdentical) {
  const ChaosDesign design;
  const hls::NetlistCampaignOptions opt = campaign_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  const std::uint64_t seed = base_seed() + 77;
  std::printf("[chaos] kill+resume seed %llu\n",
              static_cast<unsigned long long>(seed));
  const fs::path dir = fs::path(::testing::TempDir()) / "sck_chaos_resume2";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ServiceOptions so = chaos_service_options((dir / "store").string());
  so.listen = "unix:" + (dir / "daemon.sock").string();

  ChaosHarness harness(so);
  WorkerOptions mortal;
  mortal.name = "mortal";
  mortal.max_shards = 2;
  harness.add_worker(mortal);

  std::optional<ServiceCampaignResult> got;
  std::string client_error;
  std::thread client([&] {
    got = run_remote_campaign(harness.daemon().address(), design.graph,
                              design.netlist, opt, &client_error,
                              chaos_client_options());
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (harness.daemon().counters().shards_journaled < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "shards never reached the journal";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harness.kill_daemon();
  harness.restart();
  set_chaos(default_chaos(seed));
  WorkerOptions finisher;
  finisher.name = "finisher";
  harness.add_worker(finisher);

  client.join();
  clear_chaos();
  ASSERT_TRUE(got.has_value()) << client_error;
  EXPECT_TRUE(hls::same_campaign_result(got->result, want))
      << "chaos resume diverged at seed " << seed;
  EXPECT_GE(got->stats.shards_resumed, 1u);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace sck::service

// Kernel registry for the co-design explorer.
//
// The paper's Fig. 3 flow is a *general* reliable co-design loop: one
// specification, several hardware/software realizations, one trade-off
// decision. A KernelSpec captures everything the explorer needs to drive
// that loop for one kernel: how to build its plain DFG at a given data
// width (the HLS leg: builder -> schedule -> bind -> area_time -> netlist),
// and — optionally — how to measure its software realizations on the host
// (the SW leg). Protection variants (plain / class-based SCK / embedded
// checks) are applied generically via hls::insert_ced, so registering a
// kernel is all it takes to pull a new workload through the whole
// exploration pipeline.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "codesign/variant.h"
#include "hls/dfg.h"

namespace sck::codesign {

/// Software leg: one variant of a kernel run on the host over a fixed
/// deterministic workload.
struct SwReport {
  Variant variant = Variant::kPlain;
  double seconds = 0.0;
  double ratio_vs_plain = 1.0;
  /// Static data-path operation count per sample (code-size proxy; the
  /// paper's binary sizes are dominated by the runtime and nearly equal).
  int ops_per_sample = 0;
  unsigned checksum = 0;  ///< anti-DCE output fold, also a determinism check
};

/// One registered kernel: a name (registry key and netlist-name prefix), a
/// display label, the DFG builder for the plain specification and an
/// optional host-side measurement of its software variants.
struct KernelSpec {
  std::string name;     ///< registry key; also prefixes generated netlists
  std::string display;  ///< human-readable label ("FIR", "IIR biquad", ...)
  std::function<hls::Dfg(int width)> build;  ///< plain DFG at `width`
  /// Optional SW leg: measure the host realizations over `samples`
  /// iterations. Kernels without hand-written embedded checks report only
  /// the variants they support (always led by kPlain).
  std::function<std::vector<SwReport>(std::size_t samples)> measure_sw;
};

/// Name-keyed kernel collection. Registration order is preserved (it is
/// the default exploration order).
class KernelRegistry {
 public:
  /// Registers a kernel; the name must be non-empty and unique. A
  /// duplicate name aborts (SCK_EXPECTS): two specs under one key would
  /// silently shadow each other in every name-driven grid.
  void add(KernelSpec spec);

  [[nodiscard]] const KernelSpec* find(std::string_view name) const;
  /// Like find, but aborts on unknown names (explorer-internal lookups).
  [[nodiscard]] const KernelSpec& at(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return kernels_.size(); }

 private:
  std::vector<KernelSpec> kernels_;
};

// ---- kernel factories ------------------------------------------------------

/// FIR filter with the given taps (the paper's case study). The SW leg
/// measures all three variants (plain / SCK<int> / embedded running
/// difference) — see measure_fir_sw.
[[nodiscard]] KernelSpec make_fir_kernel(std::vector<long long> coeffs);

/// Direct-form-I IIR biquad. The SW leg runs on widened (long long)
/// arithmetic: integer biquads with non-trivial feedback random-walk, and
/// int accumulation over campaign-scale sample counts is signed-overflow UB
/// (the pattern flagged in tests/test_apps.cpp). Measures all three
/// variants (the embedded leg is the generalized running difference of
/// apps/embedded.h).
[[nodiscard]] KernelSpec make_iir_kernel(long long b0, long long b1,
                                         long long b2, long long a1,
                                         long long a2);

/// Dot product of two streamed vectors of the given length (widened
/// long long accumulation on the SW leg, as for the IIR; all three
/// variants).
[[nodiscard]] KernelSpec make_dot_kernel(int length);

/// Combinational divider: q = a / b, r = a % b. HW leg only (the host SW
/// realization adds nothing beyond the dot/FIR measurements).
[[nodiscard]] KernelSpec make_divmod_kernel();

/// Matrix-vector product for a constant matrix (rows x cols) — the first
/// multi-output DFG in the grid (one output port per row, per-output check
/// cones). The SW leg measures all three widened variants.
[[nodiscard]] KernelSpec make_matvec_kernel(
    std::vector<std::vector<long long>> matrix);

/// Streaming windowed moving sum over a `window`-deep register window with
/// an incremental running-sum update — the most state-heavy DFG in the
/// grid (window + 1 registers against two data-path ops per sample). The
/// SW leg measures all three widened variants.
[[nodiscard]] KernelSpec make_moving_sum_kernel(int window);

/// The built-in kernel set: fir {3,-5,7,-5,3}, iir biquad {3,-2,1,1,0},
/// dot-product length 4, divmod, matvec {{2,-3,1},{-1,4,2}} and
/// moving-sum window 4.
[[nodiscard]] KernelRegistry builtin_registry();

// ---- generic legs ----------------------------------------------------------

/// Builds the kernel's DFG at `width` with the CED style of `variant`
/// applied (identity for kPlain).
[[nodiscard]] hls::Dfg variant_graph(const KernelSpec& kernel, int width,
                                     Variant variant);

/// The FIR software measurement (all three Table 3 variants, int-typed as
/// in the paper; the int accumulation is overflow-safe for the bounded
/// 24-bit input stream). Kept public: bench/table3_fir_codesign.cpp and
/// the flow wrapper report it directly.
[[nodiscard]] std::vector<SwReport> measure_fir_sw(
    const std::vector<int>& coeffs, std::size_t samples);

}  // namespace sck::codesign

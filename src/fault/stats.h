// Aggregated counters over fault-injection trials and the metrics the
// paper's tables report on top of them.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.h"
#include "fault/outcome.h"

namespace sck::fault {

/// Trial counters plus the derived coverage/observability metrics.
struct CampaignStats {
  std::uint64_t silent_correct = 0;
  std::uint64_t detected_correct = 0;
  std::uint64_t detected_erroneous = 0;
  std::uint64_t masked = 0;

  /// Member-wise equality: the ONE definition the differential suites and
  /// the bench identity gates compare results with — a new counter added
  /// here is automatically part of every bit-identity check.
  friend constexpr bool operator==(const CampaignStats&,
                                   const CampaignStats&) = default;

  constexpr void record(Outcome o) {
    switch (o) {
      case Outcome::kSilentCorrect:
        ++silent_correct;
        break;
      case Outcome::kDetectedCorrect:
        ++detected_correct;
        break;
      case Outcome::kDetectedErroneous:
        ++detected_erroneous;
        break;
      case Outcome::kMasked:
        ++masked;
        break;
    }
  }

  constexpr CampaignStats& operator+=(const CampaignStats& rhs) {
    silent_correct += rhs.silent_correct;
    detected_correct += rhs.detected_correct;
    detected_erroneous += rhs.detected_erroneous;
    masked += rhs.masked;
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t total() const {
    return silent_correct + detected_correct + detected_erroneous + masked;
  }

  /// Table-2 "fault coverage": fraction of fault situations in which the
  /// result is either correct or an error signal is raised (1 - masked/total).
  [[nodiscard]] constexpr double coverage() const {
    const std::uint64_t t = total();
    if (t == 0) return 1.0;
    return 1.0 - static_cast<double>(masked) / static_cast<double>(t);
  }

  /// Situations where the fault corrupted the visible result (§4's
  /// "observable errors"; 216 for the paper's 2-bit example).
  [[nodiscard]] constexpr std::uint64_t observable_errors() const {
    return detected_erroneous + masked;
  }

  /// Situations where the check fired at all (including on correct outputs —
  /// the paper's 352/384/428 side-counts for the 2-bit adder).
  [[nodiscard]] constexpr std::uint64_t detections() const {
    return detected_correct + detected_erroneous;
  }
};

/// A Wilson score interval over a binomial proportion. The sampled
/// campaign engine records one per report: `point` is the plain sample
/// proportion successes/trials, [lo, hi] the score interval at the
/// requested z. All three are pure IEEE double expressions of
/// (successes, trials, z), evaluated in one fixed order — so two runs that
/// sampled the same faults record byte-identical bounds.
struct WilsonInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 1.0;

  friend constexpr bool operator==(const WilsonInterval&,
                                   const WilsonInterval&) = default;

  [[nodiscard]] constexpr double half_width() const {
    return (hi - lo) / 2.0;
  }
};

/// Wilson score interval for `successes` out of `trials` at critical value
/// `z` (1.96 ≈ 95%). Unlike the normal approximation it stays inside
/// [0, 1] and behaves at p near 0/1 — exactly the regime high-coverage
/// campaigns live in. trials == 0 yields the vacuous [0, 1].
[[nodiscard]] inline WilsonInterval wilson_interval(std::uint64_t successes,
                                                    std::uint64_t trials,
                                                    double z) {
  SCK_EXPECTS(successes <= trials);
  SCK_EXPECTS(z > 0.0);
  WilsonInterval w;
  if (trials == 0) return w;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  // std::sqrt is correctly rounded (IEEE 754), so the whole expression is
  // a deterministic function of (successes, trials, z).
  const double spread = z * std::sqrt(p * (1.0 - p) / n +
                                      z2 / (4.0 * n * n));
  w.point = p;
  w.lo = (centre - spread) / denom;
  w.hi = (centre + spread) / denom;
  if (w.lo < 0.0) w.lo = 0.0;
  if (w.hi > 1.0) w.hi = 1.0;
  return w;
}

}  // namespace sck::fault

#include "hls/netlist_campaign.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "fault/batch.h"
#include "fault/outcome.h"
#include "fault/parallel.h"
#include "hls/netlist_exec.h"

namespace sck::hls {

namespace {

/// Per-fault seed derivation: fault streams must depend only on (seed,
/// global fault index) so the campaign is invariant under the thread count,
/// the lane packing and the dynamic schedule (the Xoshiro constructor
/// SplitMix-expands the mixed value).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// One entry of the (strided) fault job list. Job order is the
/// deterministic reduction order, unit-major exactly like the sequential
/// sweep; job index is the per-fault stream seed.
struct Job {
  std::size_t fu = 0;
  hw::FaultSite site;
};

/// One injected-fault run on the scalar backend: a fresh input stream
/// through the faulty netlist against the fault-free reference model.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   int samples, Xoshiro256 rng) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  fault::CampaignStats stats;
  sim.reset();
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  std::vector<Word> in(netlist.input_names.size(), 0);
  std::vector<Word> out(netlist.outputs.size(), 0);
  std::unordered_map<std::string, std::uint64_t> ref_in;
  for (int k = 0; k < samples; ++k) {
    // Input i of the netlist is input i of the graph (the netlist builder
    // preserves the graph's input order).
    for (std::size_t i = 0; i < graph.inputs().size(); ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      const Word v = rng.bounded(Word{1} << n.width);
      in[i] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    sim.step_sample_indexed(in, out);

    bool erroneous = false;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      const std::string& name = netlist.outputs[i].name;
      if (name == "error") continue;  // reference error flag is always 0
      if (out[i] != want.outputs.at(name)) erroneous = true;
    }
    const bool detected =
        error_output >= 0 && out[static_cast<std::size_t>(error_output)] != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  return stats;
}

/// One 64-fault batch on the bit-plane backend: lane L runs job
/// jobs[base + L]'s fault with job (base + L)'s input stream, checked
/// against the plane-wise reference model. Writes each lane's stats into
/// its job slot — per-lane classification is exactly the scalar
/// classify(), so the slot contents match run_one_fault bit for bit.
void run_fault_batch(const Dfg& graph, NetlistBatchSim& sim,
                     DfgBatchEvaluator& ref, const std::vector<Job>& jobs,
                     std::size_t base, const NetlistCampaignOptions& options,
                     std::vector<fault::CampaignStats>& per_job) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const int lanes = static_cast<int>(
      std::min<std::size_t>(hw::kLanes, jobs.size() - base));

  sim.clear_lane_faults();
  std::vector<Xoshiro256> rng;
  rng.reserve(static_cast<std::size_t>(lanes));
  for (int lane = 0; lane < lanes; ++lane) {
    const std::size_t j = base + static_cast<std::size_t>(lane);
    sim.add_lane_fault(static_cast<int>(jobs[j].fu), jobs[j].site,
                       hw::LaneMask{1} << lane);
    rng.emplace_back(fault_stream_seed(options.seed, j));
  }
  sim.reset();

  std::vector<hw::BatchWord> in(netlist.input_names.size());
  std::vector<hw::BatchWord> out(netlist.outputs.size());
  std::vector<hw::BatchWord> want(graph.outputs().size());
  std::vector<hw::BatchWord> ref_state(graph.state_regs().size());
  std::vector<Word> lane_vals(static_cast<std::size_t>(lanes), 0);

  // Output i of the netlist is output i of the graph (the netlist builder
  // preserves the graph's output order); sanity-checked by name below.
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    SCK_EXPECTS(graph.node(graph.outputs()[i]).name ==
                netlist.outputs[i].name);
  }

  for (int k = 0; k < options.samples_per_fault; ++k) {
    for (std::size_t i = 0; i < graph.inputs().size(); ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      for (int lane = 0; lane < lanes; ++lane) {
        lane_vals[static_cast<std::size_t>(lane)] =
            rng[static_cast<std::size_t>(lane)].bounded(Word{1} << n.width);
      }
      in[i] = hw::pack(lane_vals, n.width);
    }
    ref.eval(in, ref_state, want);
    sim.step_sample_batch(in, out);

    hw::LaneMask erroneous = 0;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(out[i], want[i]);
    }
    const hw::LaneMask detected =
        error_output >= 0 ? out[static_cast<std::size_t>(error_output)][0]
                          : 0;
    const fault::LaneVerdict verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      per_job[base + static_cast<std::size_t>(lane)].record(
          fault::lane_outcome(verdict, lane));
    }
  }
}

}  // namespace

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.samples_per_fault > 0);
  SCK_EXPECTS(options.fault_stride > 0);
  SCK_EXPECTS(netlist.input_names.size() == graph.inputs().size());

  // Warm the graph's topo-order cache before any worker thread reads it
  // (Dfg::topo_order fills lazily and unsynchronized). The "error" output
  // position comes from each backend's compiled plan (ExecPlan).
  (void)graph.topo_order();

  // Materialise the (strided) job list up front.
  std::vector<Job> jobs;
  std::vector<std::size_t> unit_of_fu(netlist.fus.size(), SIZE_MAX);
  NetlistCampaignResult result;
  {
    const FuBank probe(netlist);
    for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
      const auto universe = probe.fault_universe(static_cast<int>(f));
      if (universe.empty()) continue;  // checker-side units host no faults
      unit_of_fu[f] = result.per_unit.size();
      UnitCoverage unit;
      unit.fu_index = static_cast<int>(f);
      unit.fu_name = netlist.fus[f].name;
      result.per_unit.push_back(std::move(unit));
      for (std::size_t i = 0; i < universe.size();
           i += static_cast<std::size_t>(options.fault_stride)) {
        jobs.push_back(Job{f, universe[i]});
      }
    }
  }

  std::vector<fault::CampaignStats> per_job(jobs.size());
  if (options.backend == NetlistBackend::kScalar) {
    // Shard one fault per job; each worker owns a cloned simulator (units
    // are stateful via set_fault).
    fault::parallel_shard(
        jobs.size(), options.threads,
        [&netlist] { return NetlistSim(netlist); },
        [&](NetlistSim& sim, std::size_t j) {
          sim.set_fu_fault(static_cast<int>(jobs[j].fu), jobs[j].site);
          per_job[j] = run_one_fault(
              graph, sim, options.samples_per_fault,
              Xoshiro256(fault_stream_seed(options.seed, j)));
          sim.set_fu_fault(static_cast<int>(jobs[j].fu), hw::FaultSite{});
        });
  } else {
    // Shard 64-fault batches; each worker owns a batched simulator plus a
    // plane-wise reference evaluator.
    struct BatchContext {
      NetlistBatchSim sim;
      // The reference "error" flag is never read (it is 0 by construction
      // on fault-free hardware), so the reference skips the check cone.
      DfgBatchEvaluator ref;
      BatchContext(const Netlist& nl, const Dfg& g)
          : sim(nl), ref(g, "error") {}
      BatchContext(const BatchContext&) = delete;
      BatchContext& operator=(const BatchContext&) = delete;
    };
    const std::size_t batches =
        (jobs.size() + hw::kLanes - 1) / static_cast<std::size_t>(hw::kLanes);
    fault::parallel_shard(
        batches, options.threads,
        [&netlist, &graph] { return BatchContext(netlist, graph); },
        [&](BatchContext& ctx, std::size_t b) {
          run_fault_batch(graph, ctx.sim, ctx.ref, jobs,
                          b * static_cast<std::size_t>(hw::kLanes), options,
                          per_job);
        });
  }

  // Deterministic reduction in job (fault-index) order.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    UnitCoverage& unit = result.per_unit[unit_of_fu[jobs[j].fu]];
    unit.stats += per_job[j];
    ++unit.faults;
    result.aggregate += per_job[j];
    ++result.fault_universe_size;
  }
  return result;
}

}  // namespace sck::hls

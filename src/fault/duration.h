// Fault-duration models: permanent, transient and intermittent faults.
//
// §2 of the paper: "Both permanent and transient and intermittent faults
// are covered by our approach, the latter increasingly likely to occur in
// any integrated device". The base trials of fault/trials.h model the
// permanent case (the fault persists through the nominal operation and its
// hidden control — the §4 worst case). The wrappers here re-run the same
// checked operations while toggling the injected fault per operation phase:
//
//   kTransient    the fault is active during the nominal operation only
//                 (a particle strike that has decayed by the time the
//                 control executes). Any observable error is then caught —
//                 coverage is exactly 100%, the same mechanism as the
//                 distinct-unit allocation;
//   kIntermittent the fault is active during any given operation with a
//                 duty probability (a marginal contact, a noisy supply).
//                 Masking needs the fault active during the nominal *and*
//                 compensating during the check, so coverage interpolates
//                 between the transient and permanent extremes.
//
// The wrappers restore the campaign's injected fault before returning, so
// they compose with run_exhaustive / run_sampled unchanged.
//
// Determinism discipline: every duty decision is a STATELESS hash of
// (duty seed, decision index) — duration models never draw from the
// campaign RNG, so switching a trial between permanent, transient and
// intermittent cannot perturb the seeded operand streams of an existing
// campaign (tests/test_duration.cpp pins this), and the same derivation
// is thread/lane/backend-invariant when the netlist campaign engine
// reuses it per (fault index, sample index).
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "fault/technique.h"
#include "hw/comparator.h"
#include "hw/fault_site.h"

namespace sck::fault {

/// How long the injected fault stays active.
enum class FaultDuration : unsigned char {
  kPermanent,
  kTransient,
  kIntermittent,
};

/// Stateless SplitMix64-style avalanche over (seed, a, b): the single
/// derivation behind every duty/window decision. A pure function of its
/// inputs — no hidden stream position — so any two executions that agree
/// on (seed, a, b) agree on the decision, regardless of evaluation order,
/// thread count, lane packing or backend.
[[nodiscard]] constexpr std::uint64_t duration_hash(std::uint64_t seed,
                                                    std::uint64_t a,
                                                    std::uint64_t b = 0) {
  std::uint64_t x = seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                    (b + 1) * 0xD1B54A32D192ED03ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic per-mille duty stream for intermittent faults: decision
/// `at` is duration_hash(seed, at) % 1000, a pure function of the pair.
/// Trials advance `at` per phase, so consecutive operations see fresh
/// draws — but the stream is completely decoupled from every operand RNG
/// (duration-model-invariant campaign streams by construction).
struct DutyStream {
  std::uint64_t seed = 0;
  std::uint64_t at = 0;

  [[nodiscard]] std::uint32_t next_permille() {
    return static_cast<std::uint32_t>(duration_hash(seed, at++) % 1000);
  }
};

[[nodiscard]] constexpr std::string_view to_string(FaultDuration d) {
  switch (d) {
    case FaultDuration::kPermanent:
      return "permanent";
    case FaultDuration::kTransient:
      return "transient";
    case FaultDuration::kIntermittent:
      return "intermittent";
  }
  SCK_UNREACHABLE();
}

/// Per-trial fault toggling for one unit. Captures the campaign-injected
/// fault on construction and restores it on destruction; phase() arms or
/// disarms the fault for the next operation according to the duration
/// model.
template <typename Unit>
class FaultWindow {
 public:
  FaultWindow(Unit& unit, FaultDuration duration, DutyStream* duty,
              std::uint32_t duty_permille)
      : unit_(unit),
        injected_(unit.fault()),
        duration_(duration),
        duty_(duty),
        duty_permille_(duty_permille) {}

  ~FaultWindow() { unit_.set_fault(injected_); }

  FaultWindow(const FaultWindow&) = delete;
  FaultWindow& operator=(const FaultWindow&) = delete;

  /// Arm/disarm before an operation. `nominal` marks the nominal phase.
  /// Only kIntermittent consults the duty stream — and that stream is its
  /// own, hash-derived — so no duration model ever consumes a draw from
  /// the campaign's operand RNG.
  void phase(bool nominal) {
    bool active = false;
    switch (duration_) {
      case FaultDuration::kPermanent:
        active = true;
        break;
      case FaultDuration::kTransient:
        active = nominal;
        break;
      case FaultDuration::kIntermittent:
        active = duty_ != nullptr && duty_->next_permille() < duty_permille_;
        break;
    }
    if (active) {
      unit_.set_fault(injected_);
    } else {
      unit_.clear_fault();
    }
  }

 private:
  Unit& unit_;
  hw::FaultSite injected_;
  FaultDuration duration_;
  DutyStream* duty_;
  std::uint32_t duty_permille_;
};

/// Checked addition under a fault-duration model (Tech1/Tech2/Both only;
/// the residue path needs the carry phase-coupled and is covered by the
/// base trial for the permanent case).
template <typename Adder>
struct DurationAddTrial {
  Adder& adder;  // toggled per phase; campaign injects the fault
  Technique tech = Technique::kTech1;
  FaultDuration duration = FaultDuration::kTransient;
  DutyStream* duty = nullptr;       // required for kIntermittent
  std::uint32_t duty_permille = 500;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    const Word golden = sck::add(a, b, n);
    FaultWindow<Adder> window(adder, duration, duty, duty_permille);

    window.phase(/*nominal=*/true);
    const Word ris = adder.add(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.sub(ris, a), b, n);
    }
    if (uses_tech2(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.sub(ris, b), a, n);
    }
    return classify(ris != golden, ok);
  }
};

/// Checked subtraction under a fault-duration model.
template <typename Adder>
struct DurationSubTrial {
  Adder& adder;
  Technique tech = Technique::kTech1;
  FaultDuration duration = FaultDuration::kTransient;
  DutyStream* duty = nullptr;
  std::uint32_t duty_permille = 500;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    const Word golden = sck::sub(a, b, n);
    FaultWindow<Adder> window(adder, duration, duty, duty_permille);

    window.phase(true);
    const Word ris = adder.sub(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.add(ris, b), a, n);
    }
    if (uses_tech2(tech)) {
      window.phase(false);
      const Word risp = adder.sub(b, a);
      window.phase(false);
      ok = ok && hw::is_zero(adder.add(ris, risp), n);
    }
    return classify(ris != golden, ok);
  }
};

}  // namespace sck::fault

// Stable campaign fingerprints — the content address of the result store.
//
// A campaign's NetlistCampaignResult is a pure function of (reference
// graph, compiled execution plan + the netlist identity behind it, fault
// universe, stream mode + seed, sample count, the backend-invariant
// campaign options) — the determinism discipline of PRs 1-5 proves the
// backend, lane packing and thread count cannot change a single bit. The
// fingerprint hashes exactly that input tuple into a 128-bit key, byte for
// byte and in a pinned order, so the same campaign always maps to the same
// on-disk entry on every platform (all values are serialized into the hash
// as fixed-width little-endian bytes — native endianness and integer sizes
// never leak in).
//
// POISONING HAZARD: anything that changes the numerical result of a
// campaign but is NOT hashed here would silently alias distinct campaigns
// onto one cache slot. The converse (hashing something irrelevant) only
// costs misses. When in doubt, hash it — and when the hashed-input
// enumeration itself changes, bump kFingerprintVersion so every stale
// entry misses instead of colliding (tests/test_store.cpp pins golden
// fingerprint values to make accidental drift loud).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "hls/dfg.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"

namespace sck::store {

/// Hashed-input enumeration generation. Bump when campaign_fingerprint
/// starts hashing different inputs (or the same inputs differently):
/// every entry written under the old enumeration then misses cleanly.
inline constexpr std::uint64_t kFingerprintVersion = 2;

/// 128-bit content address of one campaign.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// 32 lowercase hex digits, hi first — the on-disk entry name.
[[nodiscard]] std::string to_string(const Fingerprint& fp);

/// Incremental two-lane FNV-1a/64 hasher with a SplitMix64 finalizer.
/// Order-sensitive: callers must feed fields in a pinned sequence.
/// Collisions are not adversarially hard (this is a cache key, not a
/// security boundary) — every store entry therefore echoes its full
/// fingerprint and payload checksum, so a colliding or misplaced entry is
/// rejected on read rather than trusted.
class FingerprintHasher {
 public:
  /// Feed one 64-bit value as 8 little-endian bytes.
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u64(v ? 1 : 0); }
  /// Length-prefixed, so ("ab", "c") never hashes like ("a", "bc").
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }

  [[nodiscard]] Fingerprint finish() const;

 private:
  void byte(unsigned char b) {
    a_ = (a_ ^ b) * kPrime;
    b_ = (b_ ^ b) * kPrime;
  }

  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t a_ = 0xCBF29CE484222325ULL;  ///< FNV-1a offset basis
  std::uint64_t b_ = 0x6C62272E07BB0142ULL;  ///< second lane, distinct basis
};

/// The campaign key: hashes the reference graph (semantics + input widths
/// that shape the stimuli), the compiled plan (the executed structure),
/// the netlist's FU identities (their names are part of the result's
/// per-unit breakdown), the complete per-FU stuck-at universe, and the
/// backend-invariant campaign options (samples, seed, stride, stream
/// mode, fault dropping — NOT backend or threads, which are proven not to
/// affect results). `plan` must be compiled from the netlist the campaign
/// will run (plan.netlist is read for FU identity and fault universes).
[[nodiscard]] Fingerprint campaign_fingerprint(
    const hls::Dfg& graph, const hls::ExecPlan& plan,
    const hls::NetlistCampaignOptions& options);

}  // namespace sck::store

#include "hls/builder.h"

#include <string>

#include "common/assert.h"

namespace sck::hls {

namespace {

/// Balanced summation tree over the given operands (keeps the critical path
/// logarithmic, which is what a behavioural scheduler would also find).
NodeId sum_tree(Dfg& g, std::vector<NodeId> terms) {
  SCK_EXPECTS(!terms.empty());
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    next.reserve(terms.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(g.add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

}  // namespace

Dfg build_fir(const FirSpec& spec) {
  SCK_EXPECTS(!spec.coeffs.empty());
  Dfg g;
  const int w = spec.width;
  const NodeId x = g.input("x", w);

  // Delay line: d[0] = x, d[i] = x[k-i] held in registers.
  std::vector<NodeId> delayed;
  delayed.push_back(x);
  NodeId prev = x;
  for (std::size_t i = 1; i < spec.coeffs.size(); ++i) {
    const NodeId d = g.state_reg("d" + std::to_string(i), w);
    g.set_reg_next(d, prev);
    delayed.push_back(d);
    prev = d;
  }

  std::vector<NodeId> products;
  products.reserve(spec.coeffs.size());
  for (std::size_t i = 0; i < spec.coeffs.size(); ++i) {
    const NodeId c = g.constant(spec.coeffs[i], w);
    products.push_back(g.mul(c, delayed[i]));
  }

  (void)g.output("y", sum_tree(g, std::move(products)));
  g.validate();
  return g;
}

Dfg build_iir_biquad(const IirBiquadSpec& spec) {
  Dfg g;
  const int w = spec.width;
  const NodeId x = g.input("x", w);

  const NodeId x1 = g.state_reg("x1", w);
  const NodeId x2 = g.state_reg("x2", w);
  const NodeId y1 = g.state_reg("y1", w);
  const NodeId y2 = g.state_reg("y2", w);

  const NodeId b0 = g.constant(spec.b0, w);
  const NodeId b1 = g.constant(spec.b1, w);
  const NodeId b2 = g.constant(spec.b2, w);
  const NodeId a1 = g.constant(spec.a1, w);
  const NodeId a2 = g.constant(spec.a2, w);

  const NodeId ff = g.add(g.add(g.mul(b0, x), g.mul(b1, x1)), g.mul(b2, x2));
  const NodeId fb = g.add(g.mul(a1, y1), g.mul(a2, y2));
  const NodeId y = g.sub(ff, fb);

  g.set_reg_next(x1, x);
  g.set_reg_next(x2, x1);
  g.set_reg_next(y1, y);
  g.set_reg_next(y2, y1);

  (void)g.output("y", y);
  g.validate();
  return g;
}

Dfg build_dot(int length, int width) {
  SCK_EXPECTS(length >= 1);
  Dfg g;
  std::vector<NodeId> products;
  products.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    const NodeId a = g.input("a" + std::to_string(i), width);
    const NodeId b = g.input("b" + std::to_string(i), width);
    products.push_back(g.mul(a, b));
  }
  (void)g.output("dot", sum_tree(g, std::move(products)));
  g.validate();
  return g;
}

Dfg build_matvec(const std::vector<std::vector<long long>>& m, int width) {
  SCK_EXPECTS(!m.empty() && !m.front().empty());
  const std::size_t cols = m.front().size();
  Dfg g;
  std::vector<NodeId> v;
  v.reserve(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    v.push_back(g.input("v" + std::to_string(j), width));
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    SCK_EXPECTS(m[i].size() == cols);
    std::vector<NodeId> terms;
    terms.reserve(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      terms.push_back(g.mul(g.constant(m[i][j], width), v[j]));
    }
    (void)g.output("y" + std::to_string(i), sum_tree(g, std::move(terms)));
  }
  g.validate();
  return g;
}

Dfg build_divmod(int width) {
  Dfg g;
  const NodeId a = g.input("a", width);
  const NodeId b = g.input("b", width);
  (void)g.output("q", g.op(Op::kDiv, {a, b}, width));
  (void)g.output("r", g.op(Op::kRem, {a, b}, width));
  g.validate();
  return g;
}

Dfg build_moving_sum(int window, int width) {
  SCK_EXPECTS(window >= 1);
  Dfg g;
  const NodeId x = g.input("x", width);

  // Delay line deep enough to read x[k-window]: d1 = x[k-1], ...,
  // d<window> = x[k-window] (the sample leaving the window this step).
  std::vector<NodeId> delayed;
  delayed.reserve(static_cast<std::size_t>(window));
  NodeId prev = x;
  for (int i = 1; i <= window; ++i) {
    const NodeId d = g.state_reg("d" + std::to_string(i), width);
    g.set_reg_next(d, prev);
    delayed.push_back(d);
    prev = d;
  }

  // Running sum: s holds y[k-1]; y = s + x - x[k-window].
  const NodeId s = g.state_reg("s", width);
  const NodeId y = g.sub(g.add(s, x), delayed.back());
  g.set_reg_next(s, y);

  (void)g.output("y", y);
  g.validate();
  return g;
}

}  // namespace sck::hls

// Fault-simulation throughput, operator-level AND system-level.
//
// Operator level: scalar vs W-lane batched vs batched + thread pool on
// the paper's flagship campaign (checked addition on the 8-bit
// ripple-carry adder, exhaustive: 256 faults x 2^16 input pairs = 16.7M
// faulty situations).
//
// System level: the netlist-campaign engines on the complete FU stuck-at
// sweep of a synthesized self-checking FIR through the compiled execution
// plan (hls/netlist_exec.h) — scalar interpreter vs the W-lane bit-plane
// backend (lane = fault, per-fault streams) vs bit-plane + thread pool,
// then the shared-stream section: bit-plane under one shared stream vs
// the golden-trace incremental backend (fault-cone replay) plain and with
// fault dropping, swept over --threads pool sizes, and the lane-width
// sweep: the same shared campaign at W = 64/128/256/512 plane lanes
// (hw/plane.h) on one thread, reporting speedup_wide_vs_64.
//
// This is the repository's perf trajectory file: it emits
// machine-readable BENCH_fault_throughput.json so future sessions and CI
// can diff trials/sec mechanically. Every engine pair is verified to
// produce bit-identical results before any timing is reported — a perf
// number for a wrong result is worthless. (The fault-dropping row is the
// one exception by design: it answers the cheaper "is every fault ever
// detected?" query, so it is checked for detection-set consistency
// instead.)
//
// Usage: ./fault_throughput [json_path] [system_samples_per_fault]
//                           [--threads=a,b,c] [--lanes=N]
// --lanes pins the plane width of every non-sweep engine row (the
// lane-width sweep section still covers 64..512 explicitly); each JSON
// row records the RESOLVED width it actually ran at.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "codesign/flow.h"
#include "common/table.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/parallel.h"
#include "fault/trials.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"
#include "hls/schedule.h"
#include "hw/plane.h"
#include "hw/ripple_carry_adder.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/worker.h"

namespace {

using sck::fault::CampaignResult;
using sck::fault::Technique;

constexpr int kWidth = 8;

/// Best-of-3 wall time: the minimum is the least noise-contaminated
/// estimate of an engine's capability on a shared machine.
double seconds(auto&& body) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

/// Worker context for the parallel driver: one adder + one batched trial.
struct AddContext {
  sck::hw::RippleCarryAdder adder{kWidth};
  sck::fault::AddBatchTrial<sck::hw::RippleCarryAdder> trial_{
      adder, Technique::kTech1};

  AddContext() = default;
  // trial_ references adder: copying/moving would rebind it to a dead
  // sibling (see the context lifetime rule in fault/parallel.h).
  AddContext(const AddContext&) = delete;
  AddContext& operator=(const AddContext&) = delete;

  std::vector<sck::hw::FaultableUnit*> units() { return {&adder}; }
  [[nodiscard]] const auto& trial() const { return trial_; }
};

bool same_result(const CampaignResult& x, const CampaignResult& y) {
  return x.aggregate.silent_correct == y.aggregate.silent_correct &&
         x.aggregate.detected_correct == y.aggregate.detected_correct &&
         x.aggregate.detected_erroneous == y.aggregate.detected_erroneous &&
         x.aggregate.masked == y.aggregate.masked &&
         x.fault_universe_size == y.fault_universe_size &&
         x.min_fault_coverage == y.min_fault_coverage &&
         x.max_fault_coverage == y.max_fault_coverage;
}

/// Bit identity via the library's member-wise operator==
/// (hls/netlist_campaign.h) — the single definition the *_results_identical
/// gates and the differential test suites share.
bool same_netlist_result(const sck::hls::NetlistCampaignResult& x,
                         const sck::hls::NetlistCampaignResult& y) {
  return x == y;
}

}  // namespace

int main(int argc, char** argv) {
  const sck::bench::BenchArgs args = sck::bench::parse_args(
      argc, argv, "BENCH_fault_throughput.json", /*default_iterations=*/24);
  const int hw_threads = sck::fault::resolve_threads(0);
  // Lane width the batched engines run at: --lanes if given, else the
  // SCK_LANES env, else the CPU default — recorded per row below.
  const int native_lanes = sck::hw::resolve_lanes(args.lanes);

  sck::hw::RippleCarryAdder adder(kWidth);
  std::vector<sck::hw::FaultableUnit*> units{&adder};
  const sck::fault::AddTrial<sck::hw::RippleCarryAdder> scalar_trial{
      adder, Technique::kTech1};
  const sck::fault::AddBatchTrial<sck::hw::RippleCarryAdder> batch_trial{
      adder, Technique::kTech1};

  std::cout << "Fault-simulation throughput, checked + on the " << kWidth
            << "-bit ripple-carry adder\n"
            << "(exhaustive campaign; " << hw_threads
            << " hardware thread(s) available)\n\n";

  sck::fault::CampaignOptions op_opt;
  op_opt.lanes = args.lanes;
  CampaignResult scalar_r;
  CampaignResult batched_r;
  CampaignResult parallel_r;
  const double scalar_s =
      seconds([&] { scalar_r = run_exhaustive(units, kWidth, scalar_trial); });
  const double batched_s = seconds([&] {
    batched_r = run_exhaustive_batched(units, kWidth, batch_trial, op_opt);
  });
  const double parallel_s = seconds([&] {
    parallel_r = sck::fault::run_exhaustive_batched_parallel(
        kWidth, [] { return AddContext{}; }, /*threads=*/0, op_opt);
  });

  if (!same_result(scalar_r, batched_r) || !same_result(scalar_r, parallel_r)) {
    std::cerr << "ENGINE MISMATCH: batched/parallel results differ from "
                 "scalar — refusing to report timings\n";
    return 1;
  }

  const auto trials = static_cast<double>(scalar_r.aggregate.total());
  const double scalar_tps = trials / scalar_s;
  const double batched_tps = trials / batched_s;
  const double parallel_tps = trials / parallel_s;

  sck::TextTable table("engine throughput (identical CampaignResults)");
  table.set_header(
      {"engine", "seconds", "trials/sec", "speedup vs scalar"});
  table.add_row({"scalar, 1 thread", sck::format_fixed(scalar_s, 3),
                 sck::format_fixed(scalar_tps, 0), "1.00x"});
  table.add_row({"batched (" + std::to_string(native_lanes) +
                     " lanes), 1 thread",
                 sck::format_fixed(batched_s, 3),
                 sck::format_fixed(batched_tps, 0),
                 sck::format_fixed(scalar_s / batched_s, 2) + "x"});
  table.add_row({"batched + " + std::to_string(hw_threads) + " thread(s)",
                 sck::format_fixed(parallel_s, 3),
                 sck::format_fixed(parallel_tps, 0),
                 sck::format_fixed(scalar_s / parallel_s, 2) + "x"});
  table.print(std::cout);

  // ---- system level: netlist campaign on the synthesized FIR ------------
  // Class-based CED FIR (the end-to-end Fig. 3 artifact): full FU stuck-at
  // universe of the min-area netlist, per-fault seeded streams, scalar
  // interpreter backend vs 64-lane bit-plane backend vs bit-plane + pool.
  const sck::hls::FirSpec fir_spec{{3, -5, 7, -5, 3}, 8};
  sck::hls::CedOptions ced_opt;
  ced_opt.style = sck::hls::CedStyle::kClassBased;
  const sck::hls::Dfg fir_graph =
      sck::hls::insert_ced(sck::hls::build_fir(fir_spec), ced_opt);
  const auto fir_design = sck::codesign::synthesize_fir(
      fir_spec, sck::codesign::Variant::kSck, /*min_area=*/true);

  sck::hls::NetlistCampaignOptions sys_opt;
  sys_opt.samples_per_fault = static_cast<int>(args.iterations);
  sys_opt.seed = 0x2005;
  sys_opt.threads = 1;
  sys_opt.lanes = args.lanes;

  sck::hls::NetlistCampaignResult sys_scalar_r;
  sck::hls::NetlistCampaignResult sys_batched_r;
  sck::hls::NetlistCampaignResult sys_parallel_r;
  sys_opt.backend = sck::hls::NetlistBackend::kScalar;
  const double sys_scalar_s = seconds([&] {
    sys_scalar_r =
        run_netlist_campaign(fir_graph, fir_design.netlist, sys_opt);
  });
  sys_opt.backend = sck::hls::NetlistBackend::kBatched;
  const double sys_batched_s = seconds([&] {
    sys_batched_r =
        run_netlist_campaign(fir_graph, fir_design.netlist, sys_opt);
  });
  sys_opt.threads = 0;
  const double sys_parallel_s = seconds([&] {
    sys_parallel_r =
        run_netlist_campaign(fir_graph, fir_design.netlist, sys_opt);
  });

  if (!same_netlist_result(sys_scalar_r, sys_batched_r) ||
      !same_netlist_result(sys_scalar_r, sys_parallel_r)) {
    std::cerr << "SYSTEM ENGINE MISMATCH: batched netlist results differ "
                 "from the scalar interpreter — refusing to report timings\n";
    return 1;
  }

  const auto sys_trials = static_cast<double>(sys_scalar_r.aggregate.total());
  const double sys_scalar_tps = sys_trials / sys_scalar_s;
  const double sys_batched_tps = sys_trials / sys_batched_s;
  const double sys_parallel_tps = sys_trials / sys_parallel_s;

  std::cout << "\nSystem-level campaign: self-checking FIR netlist ("
            << fir_design.netlist.fus.size() << " FUs, "
            << sys_scalar_r.fault_universe_size << " faults, "
            << sys_opt.samples_per_fault << " samples/fault)\n\n";
  sck::TextTable sys_table(
      "netlist-campaign throughput (identical results, faulty samples/sec)");
  sys_table.set_header(
      {"engine", "seconds", "samples/sec", "speedup vs scalar"});
  sys_table.add_row({"interpreter (scalar), 1 thread",
                     sck::format_fixed(sys_scalar_s, 3),
                     sck::format_fixed(sys_scalar_tps, 0), "1.00x"});
  sys_table.add_row({"bit-plane (" + std::to_string(native_lanes) +
                         " lanes), 1 thread",
                     sck::format_fixed(sys_batched_s, 3),
                     sck::format_fixed(sys_batched_tps, 0),
                     sck::format_fixed(sys_scalar_s / sys_batched_s, 2) +
                         "x"});
  sys_table.add_row({"bit-plane + " + std::to_string(hw_threads) +
                         " thread(s)",
                     sck::format_fixed(sys_parallel_s, 3),
                     sck::format_fixed(sys_parallel_tps, 0),
                     sck::format_fixed(sys_scalar_s / sys_parallel_s, 2) +
                         "x"});
  sys_table.print(std::cout);

  // ---- system level, shared streams: incremental fault-cone replay --------
  // Same campaign under StreamMode::kShared: every fault sees identical
  // stimuli, the fault-free work collapses to one golden trace, and the
  // incremental backend replays only each batch's union fault cone. Swept
  // over the --threads pool sizes so the JSON records scaling.
  // Thread count 1 must run first (it anchors the identity checks and the
  // speedup baseline); the rest of the requested sweep follows in order,
  // deduplicated.
  std::vector<int> sweep{1};
  for (const int t : args.threads.empty() ? std::vector<int>{hw_threads}
                                          : args.threads) {
    if (std::find(sweep.begin(), sweep.end(), t) == sweep.end()) {
      sweep.push_back(t);
    }
  }

  {
    const sck::hls::ExecPlan plan =
        sck::hls::compile_execution_plan(fir_design.netlist);
    const sck::hls::FaultCones cones(plan);
    std::size_t cone_ops = 0;
    for (int f = 0; f < cones.num_fus(); ++f) {
      cone_ops += cones.cone_op_count(f);
    }
    std::cout << "\nShared-stream campaign: mean fault cone "
              << sck::format_fixed(static_cast<double>(cone_ops) /
                                       static_cast<double>(cones.num_fus()),
                                   1)
              << " of " << plan.ops.size() << " plan ops\n\n";
  }

  sck::hls::NetlistCampaignOptions shr_opt;
  shr_opt.samples_per_fault = static_cast<int>(args.iterations);
  shr_opt.seed = 0x2005;
  shr_opt.stream = sck::hls::StreamMode::kShared;
  shr_opt.lanes = args.lanes;

  sck::hls::NetlistCampaignResult shared_anchor_r;
  bool shared_identical = true;
  double shared_1_s = 0;
  double inc_1_s = 0;
  sck::TextTable shr_table(
      "shared-stream campaign throughput (identical results; drop row: "
      "identical detection set)");
  shr_table.set_header(
      {"engine", "threads", "seconds", "samples/sec", "speedup vs shared"});
  sck::bench::JsonValue shared_results;
  for (const int threads : sweep) {
    shr_opt.threads = threads;
    sck::hls::NetlistCampaignResult batched_r;
    sck::hls::NetlistCampaignResult inc_r;
    shr_opt.backend = sck::hls::NetlistBackend::kBatched;
    const double batched_s = seconds([&] {
      batched_r = run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
    });
    shr_opt.backend = sck::hls::NetlistBackend::kIncremental;
    const double inc_s = seconds([&] {
      inc_r = run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
    });
    if (threads == 1) {
      shared_anchor_r = batched_r;
      shared_1_s = batched_s;
      inc_1_s = inc_s;
    }
    shared_identical = shared_identical &&
                       same_netlist_result(shared_anchor_r, batched_r) &&
                       same_netlist_result(shared_anchor_r, inc_r);

    const auto shr_trials =
        static_cast<double>(shared_anchor_r.aggregate.total());
    shr_table.add_row({"bit-plane shared", std::to_string(threads),
                       sck::format_fixed(batched_s, 3),
                       sck::format_fixed(shr_trials / batched_s, 0),
                       sck::format_fixed(shared_1_s / batched_s, 2) + "x"});
    shr_table.add_row({"incremental cone replay", std::to_string(threads),
                       sck::format_fixed(inc_s, 3),
                       sck::format_fixed(shr_trials / inc_s, 0),
                       sck::format_fixed(shared_1_s / inc_s, 2) + "x"});
    {
      sck::bench::JsonValue r;
      r.set("engine", "netlist-batched-shared")
          .set("lanes", native_lanes)
          .set("threads", threads)
          .set("seconds", batched_s)
          .set("samples_per_sec", shr_trials / batched_s)
          .set("speedup_vs_shared_1t", shared_1_s / batched_s);
      shared_results.push(std::move(r));
    }
    {
      sck::bench::JsonValue r;
      r.set("engine", "system-incremental")
          .set("lanes", native_lanes)
          .set("threads", threads)
          .set("seconds", inc_s)
          .set("samples_per_sec", shr_trials / inc_s)
          .set("speedup_vs_shared_1t", shared_1_s / inc_s)
          .set("results_identical",
               same_netlist_result(shared_anchor_r, inc_r));
      shared_results.push(std::move(r));
    }
  }

  // Fault dropping: lanes retire at first detection, so totals shrink —
  // verified for detection-set consistency against the full run instead
  // of bit identity (per unit: detects iff the full run detects; units
  // that never detect are bit-identical; dropped lanes only remove work).
  shr_opt.threads = 1;
  shr_opt.backend = sck::hls::NetlistBackend::kIncremental;
  shr_opt.fault_dropping = true;
  sck::hls::NetlistCampaignResult drop_r;
  const double drop_s = seconds([&] {
    drop_r = run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
  });
  bool drop_consistent =
      drop_r.per_unit.size() == shared_anchor_r.per_unit.size() &&
      drop_r.aggregate.total() <= shared_anchor_r.aggregate.total();
  for (std::size_t u = 0;
       drop_consistent && u < shared_anchor_r.per_unit.size(); ++u) {
    const auto& full = shared_anchor_r.per_unit[u].stats;
    const auto& drop = drop_r.per_unit[u].stats;
    drop_consistent = (drop.detections() > 0) == (full.detections() > 0) &&
                      drop.total() <= full.total() &&
                      (full.detections() > 0 ||
                       (drop.silent_correct == full.silent_correct &&
                        drop.masked == full.masked));
  }
  shr_table.add_row({"incremental + fault dropping", "1",
                     sck::format_fixed(drop_s, 3),
                     sck::format_fixed(
                         static_cast<double>(drop_r.aggregate.total()) /
                             drop_s,
                         0),
                     sck::format_fixed(shared_1_s / drop_s, 2) + "x"});
  shr_table.print(std::cout);

  if (!shared_identical || !drop_consistent) {
    std::cerr << "SHARED-STREAM ENGINE MISMATCH: incremental results "
                 "diverged from the batched backend — refusing to report "
                 "timings\n";
    return 1;
  }

  // ---- lane-width sweep: the plane substrate at W = 64/128/256/512 --------
  // Same shared-stream campaign, threads pinned to 1 so the only variable
  // is the plane word (Plane64 / PlaneN<K> / the AVX types where the build
  // enables them): W faults per plane evaluation. Every row is gated on
  // bit identity with the scalar interpreter under the same stream, and
  // speedup_wide_vs_64 records the best wide-plane win per core.
  const double shared_total =
      static_cast<double>(shared_anchor_r.aggregate.total());
  shr_opt.threads = 1;
  shr_opt.fault_dropping = false;
  shr_opt.backend = sck::hls::NetlistBackend::kScalar;
  sck::hls::NetlistCampaignResult lane_scalar_r;
  const double lane_scalar_s = seconds([&] {
    lane_scalar_r =
        run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
  });
  bool lane_identical = same_netlist_result(lane_scalar_r, shared_anchor_r);

  sck::TextTable lane_table(
      "lane-width sweep, shared stream, 1 thread (identical results)");
  lane_table.set_header(
      {"engine", "lanes", "seconds", "samples/sec", "speedup vs 64 lanes"});
  lane_table.add_row({"interpreter (scalar)", "-",
                      sck::format_fixed(lane_scalar_s, 3),
                      sck::format_fixed(shared_total / lane_scalar_s, 0),
                      "-"});
  sck::bench::JsonValue lane_rows;
  {
    sck::bench::JsonValue r;
    r.set("engine", "netlist-scalar-shared")
        .set("lanes", 1)
        .set("threads", 1)
        .set("seconds", lane_scalar_s)
        .set("samples_per_sec", shared_total / lane_scalar_s)
        .set("results_identical", lane_identical);
    lane_rows.push(std::move(r));
  }
  double batched_64_s = 0;
  double inc_64_s = 0;
  double speedup_wide_vs_64 = 1.0;
  int speedup_wide_lanes = 64;
  for (const int lanes : {64, 128, 256, 512}) {
    shr_opt.lanes = lanes;
    sck::hls::NetlistCampaignResult batched_r;
    sck::hls::NetlistCampaignResult inc_r;
    shr_opt.backend = sck::hls::NetlistBackend::kBatched;
    const double batched_s = seconds([&] {
      batched_r = run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
    });
    shr_opt.backend = sck::hls::NetlistBackend::kIncremental;
    const double inc_s = seconds([&] {
      inc_r = run_netlist_campaign(fir_graph, fir_design.netlist, shr_opt);
    });
    const bool batched_identical = same_netlist_result(lane_scalar_r, batched_r);
    const bool inc_identical = same_netlist_result(lane_scalar_r, inc_r);
    lane_identical = lane_identical && batched_identical && inc_identical;
    if (lanes == 64) {
      batched_64_s = batched_s;
      inc_64_s = inc_s;
    } else {
      for (const double s : {batched_64_s / batched_s, inc_64_s / inc_s}) {
        if (s > speedup_wide_vs_64) {
          speedup_wide_vs_64 = s;
          speedup_wide_lanes = lanes;
        }
      }
    }
    lane_table.add_row(
        {"bit-plane shared", std::to_string(lanes),
         sck::format_fixed(batched_s, 3),
         sck::format_fixed(shared_total / batched_s, 0),
         sck::format_fixed(batched_64_s / batched_s, 2) + "x"});
    lane_table.add_row(
        {"incremental cone replay", std::to_string(lanes),
         sck::format_fixed(inc_s, 3),
         sck::format_fixed(shared_total / inc_s, 0),
         sck::format_fixed(inc_64_s / inc_s, 2) + "x"});
    {
      sck::bench::JsonValue r;
      r.set("engine", "netlist-batched-shared")
          .set("lanes", lanes)
          .set("threads", 1)
          .set("seconds", batched_s)
          .set("samples_per_sec", shared_total / batched_s)
          .set("speedup_vs_scalar", lane_scalar_s / batched_s)
          .set("speedup_vs_64", batched_64_s / batched_s)
          .set("results_identical", batched_identical);
      lane_rows.push(std::move(r));
    }
    {
      sck::bench::JsonValue r;
      r.set("engine", "system-incremental")
          .set("lanes", lanes)
          .set("threads", 1)
          .set("seconds", inc_s)
          .set("samples_per_sec", shared_total / inc_s)
          .set("speedup_vs_scalar", lane_scalar_s / inc_s)
          .set("speedup_vs_64", inc_64_s / inc_s)
          .set("results_identical", inc_identical);
      lane_rows.push(std::move(r));
    }
  }
  shr_opt.lanes = args.lanes;
  std::cout << "\n";
  lane_table.print(std::cout);
  if (!lane_identical) {
    std::cerr << "LANE-WIDTH ENGINE MISMATCH: wide-plane results diverged "
                 "from the scalar interpreter — refusing to report timings\n";
    return 1;
  }
  std::cout << "Best wide-vs-64 speedup: "
            << sck::format_fixed(speedup_wide_vs_64, 2) << "x at "
            << speedup_wide_lanes << " lanes\n";

  // ---- new workload shapes: multi-output matvec + state-heavy moving sum --
  // The explorer's coverage leg defaults to shared-stream incremental
  // (report_version 2), so the identity of that backend on the new netlist
  // shapes — per-output check cones (matvec) and deep register timelines
  // (moving_sum) — is part of the perf trajectory's correctness gate: one
  // row per kernel, scalar vs batched vs incremental under one shared
  // stream, recorded as system_<kernel>_results_identical (CI asserts
  // every *_results_identical field).
  const auto kernel_identity = [&](const sck::hls::Dfg& graph,
                                   const sck::hls::Netlist& netlist,
                                   const std::string& label,
                                   sck::bench::JsonValue& rows) {
    sck::hls::NetlistCampaignOptions opt;
    opt.samples_per_fault = static_cast<int>(args.iterations);
    opt.seed = 0x2005;
    opt.stream = sck::hls::StreamMode::kShared;
    opt.threads = 1;
    opt.lanes = args.lanes;

    sck::hls::NetlistCampaignResult scalar_result;
    sck::hls::NetlistCampaignResult batched_result;
    sck::hls::NetlistCampaignResult inc_result;
    opt.backend = sck::hls::NetlistBackend::kScalar;
    const double sc_s =
        seconds([&] { scalar_result = run_netlist_campaign(graph, netlist, opt); });
    opt.backend = sck::hls::NetlistBackend::kBatched;
    const double ba_s =
        seconds([&] { batched_result = run_netlist_campaign(graph, netlist, opt); });
    opt.backend = sck::hls::NetlistBackend::kIncremental;
    const double in_s =
        seconds([&] { inc_result = run_netlist_campaign(graph, netlist, opt); });

    const bool identical = same_netlist_result(scalar_result, batched_result) &&
                           same_netlist_result(scalar_result, inc_result);
    const auto kernel_trials =
        static_cast<double>(scalar_result.aggregate.total());
    sck::bench::JsonValue r;
    r.set("engine", label + "-incremental")
        .set("lanes", native_lanes)
        .set("threads", 1)
        .set("faults", scalar_result.fault_universe_size)
        .set("seconds", in_s)
        .set("samples_per_sec", kernel_trials / in_s)
        .set("speedup_vs_scalar", sc_s / in_s)
        .set("speedup_vs_batched", ba_s / in_s)
        .set("results_identical", identical);
    rows.push(std::move(r));
    std::cout << "  " << label << ": " << scalar_result.fault_universe_size
              << " faults, incremental "
              << sck::format_fixed(sc_s / in_s, 2) << "x vs scalar, "
              << sck::format_fixed(ba_s / in_s, 2) << "x vs batched, results "
              << (identical ? "identical" : "DIVERGED") << "\n";
    return identical;
  };

  std::cout << "\nNew workload shapes under shared streams (w" << kWidth
            << ", class-based CED, min-area):\n";
  sck::bench::JsonValue kernel_rows;
  bool matvec_identical = false;
  bool moving_sum_identical = false;
  {
    const sck::hls::Dfg g = sck::hls::insert_ced(
        sck::hls::build_matvec({{2, -3, 1}, {-1, 4, 2}}, kWidth), ced_opt);
    const sck::hls::ResourceConstraints rc =
        sck::hls::ResourceConstraints::min_area();
    const sck::hls::Schedule s = sck::hls::schedule_list(g, rc);
    const sck::hls::Binding b = sck::hls::bind(g, s, rc);
    const sck::hls::Netlist nl =
        sck::hls::generate_netlist(g, s, b, "matvec_sck_min_area");
    matvec_identical = kernel_identity(g, nl, "matvec", kernel_rows);
  }
  {
    const sck::hls::Dfg g =
        sck::hls::insert_ced(sck::hls::build_moving_sum(4, kWidth), ced_opt);
    const sck::hls::ResourceConstraints rc =
        sck::hls::ResourceConstraints::min_area();
    const sck::hls::Schedule s = sck::hls::schedule_list(g, rc);
    const sck::hls::Binding b = sck::hls::bind(g, s, rc);
    const sck::hls::Netlist nl =
        sck::hls::generate_netlist(g, s, b, "moving_sum_sck_min_area");
    moving_sum_identical = kernel_identity(g, nl, "moving_sum", kernel_rows);
  }
  if (!matvec_identical || !moving_sum_identical) {
    std::cerr << "NEW-KERNEL ENGINE MISMATCH: backends diverged on "
                 "matvec/moving_sum — refusing to report timings\n";
    return 1;
  }
  // ---- campaign service: loopback daemon + worker processes --------------
  // The distributed leg of the perf trajectory: an in-process daemon on
  // tcp:127.0.0.1:0 and 1/2/4 workers (each pinned to one execution
  // thread, so parallelism == worker count) run the same shared-stream
  // incremental campaign; every row is gated on BYTE identity with the
  // single-host run — the service's whole determinism contract — and the
  // "service" block carries the scheduler telemetry (excluded from
  // identity diffs, like "store").
  sck::bench::JsonValue service_rows;
  bool service_identical = true;
  double service_1w_s = 0;
  {
    sck::hls::NetlistCampaignOptions svc_opt = shr_opt;
    svc_opt.backend = sck::hls::NetlistBackend::kIncremental;
    svc_opt.fault_dropping = false;
    svc_opt.threads = 1;
    sck::hls::NetlistCampaignResult svc_ref;
    const double svc_ref_s = seconds([&] {
      svc_ref = run_netlist_campaign(fir_graph, fir_design.netlist, svc_opt);
    });
    const double svc_trials = static_cast<double>(svc_ref.aggregate.total());

    sck::TextTable svc_table(
        "campaign service, loopback daemon (byte-identical results)");
    svc_table.set_header({"workers", "shards", "re-queued", "seconds",
                          "samples/sec", "speedup vs 1 worker"});
    for (const int workers : {1, 2, 4}) {
      sck::service::ServiceOptions so;
      so.listen = "tcp:127.0.0.1:0";
      sck::service::CampaignDaemon daemon(so);
      std::string error;
      if (!daemon.start(&error)) {
        std::cerr << "SERVICE START FAILED: " << error << "\n";
        return 1;
      }
      std::thread loop([&] { daemon.run(); });
      std::vector<std::thread> pool;
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&daemon, w] {
          sck::service::WorkerOptions wo;
          wo.connect = daemon.address();
          wo.name = "bench-w" + std::to_string(w);
          wo.threads = 1;
          (void)sck::service::run_worker(wo);
        });
      }
      std::string svc_error;
      const auto got = sck::service::run_remote_campaign(
          daemon.address(), fir_graph, fir_design.netlist, svc_opt,
          &svc_error);
      daemon.stop();
      loop.join();
      for (std::thread& t : pool) t.join();
      if (!got.has_value()) {
        std::cerr << "SERVICE CAMPAIGN FAILED: " << svc_error << "\n";
        return 1;
      }
      const bool identical = same_netlist_result(got->result, svc_ref);
      service_identical = service_identical && identical;
      if (workers == 1) service_1w_s = got->stats.seconds;
      svc_table.add_row(
          {std::to_string(workers), std::to_string(got->stats.shards_total),
           std::to_string(got->stats.shards_requeued),
           sck::format_fixed(got->stats.seconds, 3),
           sck::format_fixed(svc_trials / got->stats.seconds, 0),
           sck::format_fixed(service_1w_s / got->stats.seconds, 2) + "x"});
      sck::bench::JsonValue r;
      r.set("engine", "service-incremental")
          .set("lanes", native_lanes)
          .set("workers", workers)
          .set("shards", got->stats.shards_total)
          .set("shards_requeued", got->stats.shards_requeued)
          .set("shards_journaled", got->stats.shards_journaled)
          .set("shards_resumed", got->stats.shards_resumed)
          .set("workers_quarantined", got->stats.workers_quarantined)
          .set("seconds", got->stats.seconds)
          .set("samples_per_sec", svc_trials / got->stats.seconds)
          .set("speedup_vs_1_worker", service_1w_s / got->stats.seconds)
          .set("speedup_vs_local_1t", svc_ref_s / got->stats.seconds)
          .set("results_identical", identical);
      service_rows.push(std::move(r));
    }
    std::cout << "\n";
    svc_table.print(std::cout);
    if (!service_identical) {
      std::cerr << "SERVICE ENGINE MISMATCH: distributed campaign diverged "
                   "from single-host — refusing to report timings\n";
      return 1;
    }
  }

  {
    sck::bench::JsonValue r;
    r.set("engine", "system-incremental+drop")
        .set("lanes", native_lanes)
        .set("threads", 1)
        .set("seconds", drop_s)
        .set("samples_recorded", drop_r.aggregate.total())
        .set("campaign_speedup_vs_shared_1t", shared_1_s / drop_s)
        .set("detection_set_consistent", drop_consistent);
    shared_results.push(std::move(r));
  }

  sck::bench::JsonValue results;
  {
    sck::bench::JsonValue r;
    r.set("engine", "scalar")
        .set("lanes", 1)
        .set("threads", 1)
        .set("seconds", scalar_s)
        .set("trials_per_sec", scalar_tps)
        .set("speedup_vs_scalar", 1.0);
    results.push(std::move(r));
  }
  {
    sck::bench::JsonValue r;
    r.set("engine", "batched")
        .set("lanes", native_lanes)
        .set("threads", 1)
        .set("seconds", batched_s)
        .set("trials_per_sec", batched_tps)
        .set("speedup_vs_scalar", scalar_s / batched_s);
    results.push(std::move(r));
  }
  {
    sck::bench::JsonValue r;
    r.set("engine", "batched+threads")
        .set("lanes", native_lanes)
        .set("threads", hw_threads)
        .set("seconds", parallel_s)
        .set("trials_per_sec", parallel_tps)
        .set("speedup_vs_scalar", scalar_s / parallel_s);
    results.push(std::move(r));
  }

  sck::bench::JsonValue system_results;
  {
    sck::bench::JsonValue r;
    r.set("engine", "netlist-scalar")
        .set("lanes", 1)
        .set("threads", 1)
        .set("seconds", sys_scalar_s)
        .set("samples_per_sec", sys_scalar_tps)
        .set("speedup_vs_scalar", 1.0);
    system_results.push(std::move(r));
  }
  {
    sck::bench::JsonValue r;
    r.set("engine", "netlist-batched")
        .set("lanes", native_lanes)
        .set("threads", 1)
        .set("seconds", sys_batched_s)
        .set("samples_per_sec", sys_batched_tps)
        .set("speedup_vs_scalar", sys_scalar_s / sys_batched_s);
    system_results.push(std::move(r));
  }
  {
    sck::bench::JsonValue r;
    r.set("engine", "netlist-batched+threads")
        .set("lanes", native_lanes)
        .set("threads", hw_threads)
        .set("seconds", sys_parallel_s)
        .set("samples_per_sec", sys_parallel_tps)
        .set("speedup_vs_scalar", sys_scalar_s / sys_parallel_s);
    system_results.push(std::move(r));
  }

  sck::bench::JsonValue doc;
  doc.set("bench", "fault_throughput")
      .set("campaign", "exhaustive")
      .set("trial", "AddTrial/Tech1")
      .set("unit", "ripple_carry_adder")
      .set("width", kWidth)
      .set("trials", scalar_r.aggregate.total())
      .set("fault_universe", scalar_r.fault_universe_size)
      .set("hardware_threads", hw_threads)
      .set("lanes", native_lanes)
      .set("results_identical", true)
      .set("speedup_batched", scalar_s / batched_s)
      .set("speedup_batched_threads", scalar_s / parallel_s)
      .set("results", std::move(results))
      .set("system_campaign", "netlist/fir_sck_min_area/w8")
      .set("system_trials", sys_scalar_r.aggregate.total())
      .set("system_fault_universe", sys_scalar_r.fault_universe_size)
      .set("system_results_identical", true)
      .set("system_speedup_batched", sys_scalar_s / sys_batched_s)
      .set("system_speedup_batched_threads", sys_scalar_s / sys_parallel_s)
      .set("system_results", std::move(system_results))
      .set("system_shared_campaign", "netlist/fir_sck_min_area/w8 shared")
      .set("system_shared_trials", shared_anchor_r.aggregate.total())
      .set("system_shared_results_identical", shared_identical)
      .set("system_incremental_results_identical", shared_identical)
      .set("system_speedup_incremental", shared_1_s / inc_1_s)
      .set("system_speedup_incremental_vs_batched", sys_batched_s / inc_1_s)
      .set("system_drop_detection_consistent", drop_consistent)
      .set("system_drop_campaign_speedup", shared_1_s / drop_s)
      .set("system_shared_results", std::move(shared_results))
      .set("system_lane_results_identical", lane_identical)
      .set("speedup_wide_vs_64", speedup_wide_vs_64)
      .set("speedup_wide_vs_64_lanes", speedup_wide_lanes)
      .set("system_lane_results", std::move(lane_rows))
      .set("system_matvec_results_identical", matvec_identical)
      .set("system_moving_sum_results_identical", moving_sum_identical)
      .set("system_kernel_results", std::move(kernel_rows))
      .set("service_results_identical", service_identical)
      .set("service", std::move(service_rows));

  return sck::bench::save_json(doc, args.json_path);
}

// System-level coverage of the final realization — the tool the paper
// says does not exist.
//
// §3: "there is no available tool for evaluating the fault coverage of the
// final realization with respect to the on-line fault detection
// properties, yet the local fault coverage analysis ... can be used as an
// estimation of the reliability level that will be achieved." This bench
// provides the missing measurement for our substrate: it synthesizes the
// three FIR variants, sweeps the complete stuck-at universe of every
// functional unit of each *netlist*, and reports the realization-level
// coverage — which can then be compared against the paper's local
// (per-operator) estimates from Table 1/Table 2.
//
// The sweep runs on the 64-lane bit-plane netlist backend (64 faults per
// batch through the compiled execution plan, sharded across the worker
// pool); results are bit-identical to the scalar interpreter at any lane
// packing and thread count (tests/test_netlist_batch.cpp).
#include <iostream>
#include <string>

#include "codesign/flow.h"
#include "common/table.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"

namespace {

using namespace sck::hls;
using sck::codesign::Variant;

Dfg graph_for(const FirSpec& spec, Variant v) {
  Dfg g = build_fir(spec);
  if (v == Variant::kPlain) return g;
  CedOptions opt;
  opt.style = v == Variant::kSck ? CedStyle::kClassBased : CedStyle::kEmbedded;
  return insert_ced(g, opt);
}

}  // namespace

int main() {
  std::cout
      << "System-level fault coverage of the synthesized FIR variants\n"
      << "(5 taps, 12-bit data path, min-area synthesis; every stuck-at\n"
      << "fault of every datapath FU, 48 random samples per fault)\n\n";

  const FirSpec spec{{3, -5, 7, -5, 3}, 12};
  NetlistCampaignOptions opt;
  opt.samples_per_fault = 48;
  opt.seed = 0x51C0;
  opt.threads = 0;  // full worker pool; results are thread-count invariant
  opt.backend = NetlistBackend::kBatched;  // 64 faults per bit-plane sweep

  sck::TextTable table("final-realization coverage per variant");
  table.set_header({"variant", "faults", "erroneous samples", "detected",
                    "masked", "error detection rate", "coverage"});
  for (const Variant v :
       {Variant::kPlain, Variant::kSck, Variant::kEmbedded}) {
    const Dfg graph = graph_for(spec, v);
    const auto design = sck::codesign::synthesize_fir(spec, v, true);
    const auto r = run_netlist_campaign(graph, design.netlist, opt);
    const double detection_rate =
        r.aggregate.observable_errors() == 0
            ? 1.0
            : static_cast<double>(r.aggregate.detected_erroneous) /
                  static_cast<double>(r.aggregate.observable_errors());
    table.add_row({std::string(to_string(v)),
                   std::to_string(r.fault_universe_size),
                   std::to_string(r.aggregate.observable_errors()),
                   std::to_string(r.aggregate.detected_erroneous),
                   std::to_string(r.aggregate.masked),
                   sck::format_percent(detection_rate),
                   sck::format_percent(r.aggregate.coverage())});
  }
  table.print(std::cout);

  // Per-unit breakdown for the class-based variant: the shared nominal
  // units are fully covered (checks run on private units), so residual
  // masking concentrates in the private check clusters themselves.
  {
    const Dfg graph = graph_for(spec, Variant::kSck);
    const auto design =
        sck::codesign::synthesize_fir(spec, Variant::kSck, true);
    const auto r = run_netlist_campaign(graph, design.netlist, opt);
    sck::TextTable per_unit("FIR with SCK: per-unit breakdown");
    per_unit.set_header({"functional unit", "faults", "erroneous", "masked",
                         "false alarms", "coverage"});
    for (const auto& u : r.per_unit) {
      per_unit.add_row({u.fu_name, std::to_string(u.faults),
                        std::to_string(u.stats.observable_errors()),
                        std::to_string(u.stats.masked),
                        std::to_string(u.stats.detected_correct),
                        sck::format_percent(u.stats.coverage())});
    }
    std::cout << "\n";
    per_unit.print(std::cout);
  }

  std::cout
      << "\nReading:\n"
      << " * plain FIR has no error output: every erroneous sample counts\n"
      << "   as masked (coverage = fraction of silent-correct samples);\n"
      << " * the class-based variant detects essentially everything the\n"
      << "   shared datapath units can get wrong (checks run on private,\n"
      << "   healthy units) — the realization-level counterpart of the\n"
      << "   paper's 'complete for hardware implementation' claim;\n"
      << " * the embedded variant covers the accumulation but not the\n"
      << "   multipliers — the documented trade-off, now quantified at\n"
      << "   the final-realization level the paper could not measure.\n";
  return 0;
}

// Minimal JSON emitter for machine-readable bench results (BENCH_*.json).
//
// The perf trajectory of this repository is tracked by committed JSON
// artifacts: every perf-relevant bench writes one BENCH_<name>.json next to
// its human-readable table so future sessions (and CI) can diff throughput
// numbers mechanically. Scope is deliberately tiny: objects, arrays,
// strings, bools, integers and doubles — enough for flat result records,
// no parsing, no dependencies.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace sck::bench {

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT
  JsonValue(bool v) : value_(v) {}                // NOLINT
  JsonValue(double v) : value_(v) {}              // NOLINT
  JsonValue(std::uint64_t v) : value_(v) {}       // NOLINT
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  JsonValue(std::int64_t v) : value_(v) {}        // NOLINT
  JsonValue(const char* v) : value_(std::string(v)) {}   // NOLINT
  JsonValue(std::string v) : value_(std::move(v)) {}     // NOLINT

  /// Object field (creates or overwrites). Returns *this for chaining.
  JsonValue& set(const std::string& key, JsonValue v) {
    auto* obj = std::get_if<Object>(&value_);
    if (obj == nullptr) {
      value_ = Object{};
      obj = std::get_if<Object>(&value_);
    }
    for (auto& [k, existing] : obj->fields) {
      if (k == key) {
        *existing = std::move(v);
        return *this;
      }
    }
    obj->fields.emplace_back(key,
                             std::make_unique<JsonValue>(std::move(v)));
    return *this;
  }

  /// Array element. Returns *this for chaining.
  JsonValue& push(JsonValue v) {
    auto* arr = std::get_if<Array>(&value_);
    if (arr == nullptr) {
      value_ = Array{};
      arr = std::get_if<Array>(&value_);
    }
    arr->items.push_back(std::make_unique<JsonValue>(std::move(v)));
    return *this;
  }

  void write(std::ostream& os, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
    if (const auto* obj = std::get_if<Object>(&value_)) {
      os << "{";
      for (std::size_t i = 0; i < obj->fields.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << inner << '"'
           << escaped(obj->fields[i].first) << "\": ";
        obj->fields[i].second->write(os, indent + 1);
      }
      os << "\n" << pad << "}";
    } else if (const auto* arr = std::get_if<Array>(&value_)) {
      os << "[";
      for (std::size_t i = 0; i < arr->items.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << inner;
        arr->items[i]->write(os, indent + 1);
      }
      os << "\n" << pad << "]";
    } else if (const auto* s = std::get_if<std::string>(&value_)) {
      os << '"' << escaped(*s) << '"';
    } else if (const auto* b = std::get_if<bool>(&value_)) {
      os << (*b ? "true" : "false");
    } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
      os << *u;
    } else if (const auto* n = std::get_if<std::int64_t>(&value_)) {
      os << *n;
    } else if (const auto* d = std::get_if<double>(&value_)) {
      std::ostringstream tmp;  // shortest round-trippable-ish form
      tmp.precision(15);
      tmp << *d;
      os << tmp.str();
    } else {
      os << "null";
    }
  }

  [[nodiscard]] std::string dump() const {
    std::ostringstream os;
    write(os);
    os << "\n";
    return os.str();
  }

  /// Write to a file; returns false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << dump();
    return static_cast<bool>(out);
  }

 private:
  struct Object {
    std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> fields;
  };
  struct Array {
    std::vector<std::unique_ptr<JsonValue>> items;
  };

  [[nodiscard]] static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::variant<std::nullptr_t, bool, double, std::uint64_t, std::int64_t,
               std::string, Object, Array>
      value_;
};

}  // namespace sck::bench

#include "store/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

namespace sck::store {

namespace fs = std::filesystem;

namespace {

/// "SCKSTORE" as a little-endian u64.
constexpr std::uint64_t kMagic = 0x45524F54534B4353ULL;

/// Fixed header: magic, version+reserved, key echo, payload length.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kChecksumBytes = 8;

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_str(std::vector<unsigned char>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_stats(std::vector<unsigned char>& out,
               const fault::CampaignStats& s) {
  put_u64(out, s.silent_correct);
  put_u64(out, s.detected_correct);
  put_u64(out, s.detected_erroneous);
  put_u64(out, s.masked);
}

[[nodiscard]] std::uint64_t fnv1a(const unsigned char* data,
                                  std::size_t size) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ULL;
  }
  return h;
}

/// Bounds-checked little-endian reader. Every accessor reports failure by
/// returning false and latching ok() — malformed bytes can only produce a
/// clean parse failure, never UB or an abort.
class Reader {
 public:
  explicit Reader(const std::vector<unsigned char>& bytes) : bytes_(bytes) {}

  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (!ok_ || bytes_.size() - at_ < 8) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 8;
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (!ok_ || bytes_.size() - at_ < 4) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 4;
    return true;
  }

  [[nodiscard]] bool str(std::string& s) {
    std::uint64_t len = 0;
    if (!u64(len)) return false;
    if (len > remaining()) return fail();
    s.assign(reinterpret_cast<const char*>(bytes_.data() + at_),
             static_cast<std::size_t>(len));
    at_ += static_cast<std::size_t>(len);
    return true;
  }

  [[nodiscard]] bool stats(fault::CampaignStats& s) {
    return u64(s.silent_correct) && u64(s.detected_correct) &&
           u64(s.detected_erroneous) && u64(s.masked);
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - at_; }
  [[nodiscard]] std::size_t position() const { return at_; }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  const std::vector<unsigned char>& bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

/// Write `bytes` to `path` and flush it to stable storage. POSIX I/O so
/// the data is fsync'd before the caller renames the file into place —
/// the crash-safety half of the atomic-commit protocol.
[[nodiscard]] bool write_file_durable(const std::string& path,
                                      const std::vector<unsigned char>& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  return (::close(fd) == 0) && synced;
}

/// Best-effort directory fsync after a rename, so the committed entry's
/// directory record survives a crash too. Failure is ignored: the worst
/// case is a lost cache entry, never a wrong one.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

std::vector<unsigned char> serialize_entry(
    const Fingerprint& key, const hls::NetlistCampaignResult& value) {
  // Payload first, so the header can carry its exact length.
  std::vector<unsigned char> payload;
  put_u64(payload, value.fault_universe_size);
  put_stats(payload, value.aggregate);
  put_u64(payload, value.per_unit.size());
  for (const hls::UnitCoverage& unit : value.per_unit) {
    put_u64(payload, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(unit.fu_index)));
    put_str(payload, unit.fu_name);
    put_u64(payload, unit.faults);
    put_stats(payload, unit.stats);
  }

  std::vector<unsigned char> out;
  out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  put_u64(out, kMagic);
  put_u32(out, kStoreFormatVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, key.hi);
  put_u64(out, key.lo);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::optional<hls::NetlistCampaignResult> deserialize_entry(
    const Fingerprint& key, const std::vector<unsigned char>& bytes) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) return std::nullopt;

  // Checksum over everything before the trailer; verified FIRST so a
  // corrupted header cannot even steer the parse.
  const std::size_t body = bytes.size() - kChecksumBytes;
  std::uint64_t want_sum = 0;
  for (int i = 0; i < 8; ++i) {
    want_sum |= static_cast<std::uint64_t>(bytes[body + static_cast<std::size_t>(i)])
                << (8 * i);
  }
  if (fnv1a(bytes.data(), body) != want_sum) return std::nullopt;

  Reader r(bytes);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  Fingerprint echoed;
  std::uint64_t payload_len = 0;
  if (!r.u64(magic) || !r.u32(version) || !r.u32(reserved) ||
      !r.u64(echoed.hi) || !r.u64(echoed.lo) || !r.u64(payload_len)) {
    return std::nullopt;
  }
  if (magic != kMagic || version != kStoreFormatVersion || reserved != 0 ||
      echoed != key || payload_len != body - kHeaderBytes) {
    return std::nullopt;
  }

  hls::NetlistCampaignResult result;
  std::uint64_t units = 0;
  if (!r.u64(result.fault_universe_size) || !r.stats(result.aggregate) ||
      !r.u64(units)) {
    return std::nullopt;
  }
  // Each unit occupies at least its fixed-width fields; a fabricated count
  // larger than the remaining bytes is rejected before any allocation.
  constexpr std::uint64_t kMinUnitBytes = 8 + 8 + 8 + 4 * 8;
  if (units > r.remaining() / kMinUnitBytes) return std::nullopt;
  result.per_unit.resize(static_cast<std::size_t>(units));
  for (hls::UnitCoverage& unit : result.per_unit) {
    std::uint64_t fu_index = 0;
    if (!r.u64(fu_index) || !r.str(unit.fu_name) || !r.u64(unit.faults) ||
        !r.stats(unit.stats)) {
      return std::nullopt;
    }
    unit.fu_index = static_cast<int>(static_cast<std::int64_t>(fu_index));
  }
  // The payload must be consumed exactly: trailing garbage inside a
  // correctly-checksummed body still fails (defense against truncated
  // writes that happen to re-checksum).
  if (!r.ok() || r.position() != body) return std::nullopt;
  return result;
}

CampaignStore::CampaignStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_, ec)) {
    degraded_ = true;
    std::fprintf(stderr,
                 "[store] WARNING: cannot open store directory '%s' (%s); "
                 "running uncached\n",
                 dir_.c_str(), ec.message().c_str());
  }
}

std::string CampaignStore::entry_path(const Fingerprint& key) const {
  return dir_ + "/" + to_string(key) + ".entry";
}

std::string CampaignStore::journal_path(const Fingerprint& key) const {
  return dir_ + "/" + to_string(key) + ".journal";
}

void CampaignStore::pin(const Fingerprint& key) {
  const std::lock_guard<std::mutex> lock(pins_mutex_);
  ++pins_[{key.hi, key.lo}];
}

void CampaignStore::unpin(const Fingerprint& key) {
  const std::lock_guard<std::mutex> lock(pins_mutex_);
  const auto it = pins_.find({key.hi, key.lo});
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

bool CampaignStore::pinned(const Fingerprint& key) const {
  const std::lock_guard<std::mutex> lock(pins_mutex_);
  return pins_.contains({key.hi, key.lo});
}

void CampaignStore::quarantine(const std::string& path, const char* reason) {
  corrupt_.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  const fs::path src(path);
  const fs::path qdir = fs::path(dir_) / "corrupt";
  fs::create_directories(qdir, ec);
  const fs::path dst =
      qdir / (src.filename().string() + "." +
              std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed)));
  ec.clear();
  fs::rename(src, dst, ec);
  if (ec) {
    // Cannot preserve the evidence (another thread may have grabbed it, or
    // the directory is read-only): drop the entry instead so it is not
    // re-served; if even that fails it will simply fail verification again.
    fs::remove(src, ec);
  }
  std::fprintf(stderr,
               "[store] WARNING: quarantined corrupt entry '%s' (%s); "
               "recomputing\n",
               path.c_str(), reason);
}

std::optional<hls::NetlistCampaignResult> CampaignStore::load(
    const Fingerprint& key) {
  if (degraded_) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string path = entry_path(key);
  std::vector<unsigned char> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    unsigned char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        quarantine(path, "read error");
        return std::nullopt;
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
  }

  std::optional<hls::NetlistCampaignResult> result =
      deserialize_entry(key, bytes);
  if (!result) {
    quarantine(path, "failed verification (checksum/version/key/structure)");
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void CampaignStore::warn_write_failure_once(const std::string& detail) {
  write_failures_.fetch_add(1, std::memory_order_relaxed);
  if (!warned_write_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[store] WARNING: cannot write store entry (%s); results "
                 "stay correct but uncached\n",
                 detail.c_str());
  }
}

bool CampaignStore::save(const Fingerprint& key,
                         const hls::NetlistCampaignResult& value) {
  if (degraded_) return false;
  const std::vector<unsigned char> bytes = serialize_entry(key, value);
  const std::string final_path = entry_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed));
  if (!write_file_durable(tmp_path, bytes)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    warn_write_failure_once(tmp_path);
    return false;
  }
  // Atomic commit: concurrent writers of the same key carry identical
  // bytes (deterministic campaigns), so whichever rename lands the entry
  // is valid; rename(2) can replace but never tear.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    warn_write_failure_once(final_path);
    return false;
  }
  sync_dir(dir_);
  return true;
}

namespace {

/// Inverse of to_string(Fingerprint) for a file stem: 32 lowercase hex
/// digits, hi first. nullopt for anything else (temp files, foreign
/// names) — those are simply not pinnable.
[[nodiscard]] std::optional<Fingerprint> fingerprint_of_stem(
    const std::string& stem) {
  if (stem.size() != 32) return std::nullopt;
  Fingerprint fp;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t v = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = stem[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
      v = (v << 4) | digit;
    }
    (half == 0 ? fp.hi : fp.lo) = v;
  }
  return fp;
}

}  // namespace

std::size_t CampaignStore::trim(std::uint64_t max_bytes) {
  if (degraded_) return 0;
  struct EntryFile {
    fs::file_time_type mtime;
    std::string path;
    std::uint64_t size = 0;
  };
  std::vector<EntryFile> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".entry" && p.extension() != ".journal") continue;
    // A pinned fingerprint's files belong to a campaign that is running
    // RIGHT NOW: its write-ahead journal (and entry) must survive any
    // budget. Left out of `total` too — a pin is a lease, not a tenant.
    if (const std::optional<Fingerprint> fp =
            fingerprint_of_stem(p.stem().string());
        fp.has_value() && pinned(*fp)) {
      continue;
    }
    EntryFile e;
    e.path = p.string();
    e.size = static_cast<std::uint64_t>(fs::file_size(p, ec));
    if (ec) continue;
    e.mtime = fs::last_write_time(p, ec);
    if (ec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= max_bytes) return 0;
  // Oldest first; path tie-break keeps the order deterministic when a
  // filesystem's mtime granularity collapses timestamps.
  std::sort(entries.begin(), entries.end(),
            [](const EntryFile& a, const EntryFile& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
            });
  std::size_t removed = 0;
  for (const EntryFile& e : entries) {
    if (total <= max_bytes) break;
    ec.clear();
    if (fs::remove(e.path, ec) && !ec) {
      total -= e.size;
      ++removed;
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return removed;
}

CacheStats CampaignStore::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  s.degraded = degraded_;
  return s;
}

std::string store_dir_from_env() {
  const char* dir = std::getenv("SCK_STORE_DIR");
  return dir == nullptr ? std::string{} : std::string(dir);
}

}  // namespace sck::store

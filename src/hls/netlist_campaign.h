// System-level fault-coverage evaluation on synthesized netlists.
//
// §3 of the paper concedes: "there is no available tool for evaluating the
// fault coverage of the final realization with respect to the on-line
// fault detection properties, yet the local fault coverage analysis ...
// can be used as an estimation". This module is that missing tool for our
// substrate: it sweeps the complete stuck-at fault universe of every
// functional unit of a generated netlist, drives each faulty configuration
// with a reproducible input stream, compares the data outputs against the
// fault-free reference model, and classifies every sample with the same
// four-way taxonomy as the unit-level campaigns — yielding the *final
// realization's* coverage, which the paper could only estimate.
//
// Three execution backends drive the sweep (hls/netlist_exec.h):
//   kScalar       the compiled scalar interpreter, one fault at a time;
//   kBatched      the W-lane bit-plane engine — W faults per batch (lane
//                 = fault, via per-lane LaneFaultSetT hooks), checked
//                 against the plane-wise Dfg reference model
//                 (DfgBatchEvaluatorT);
//   kIncremental  golden-trace fault-cone replay (shared streams only):
//                 the fault-free execution and the Dfg reference are
//                 computed ONCE per campaign, and each batch replays only
//                 the union fan-out cone of its ≤W faulted FUs, splicing
//                 everything else from the golden trace.
// The lane width W is resolved once per campaign (options.lanes, the
// SCK_LANES env var, or the CPU default — see hw::resolve_lanes) and only
// changes how faults are grouped into batches: per-fault stats land in
// job-indexed slots reduced in fault-index order, so the result is
// bit-identical for ANY backend, lane width and thread count under the
// same StreamMode (tests/test_netlist_batch.cpp,
// tests/test_netlist_incremental.cpp and
// tests/test_backend_differential.cpp prove it).
// All backends shard the fault universe through fault/parallel.h over ONE
// compiled ExecPlan.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/duration.h"
#include "fault/stats.h"
#include "hls/dfg.h"
#include "hls/netlist_sim.h"
#include "hw/fault_site.h"

namespace sck::hls {

struct ExecPlan;

/// Per-functional-unit coverage breakdown.
struct UnitCoverage {
  int fu_index = -1;
  std::string fu_name;
  std::size_t faults = 0;
  fault::CampaignStats stats;

  friend bool operator==(const UnitCoverage&, const UnitCoverage&) = default;
};

struct NetlistCampaignResult {
  fault::CampaignStats aggregate;
  std::vector<UnitCoverage> per_unit;
  std::uint64_t fault_universe_size = 0;

  /// Member-wise bit-identity (aggregate + complete per-unit breakdown):
  /// what the differential test suites and the bench *_results_identical
  /// gates mean by "identical" — one definition, library-owned, so a new
  /// field cannot be silently dropped from a subset of the comparisons.
  friend bool operator==(const NetlistCampaignResult&,
                         const NetlistCampaignResult&) = default;
};

/// Execution backend selection for the sweep (results are identical under
/// the same StreamMode; the batched engine packs 64 faults per evaluation
/// and is the default; the incremental engine requires kShared streams).
enum class NetlistBackend : unsigned char { kScalar, kBatched, kIncremental };

/// Input-stream semantics of the sweep.
enum class StreamMode : unsigned char {
  /// Streams keyed by (seed, fault index): every fault sees its own
  /// stimuli. Legacy default at this level — every pre-existing campaign
  /// result (and the report_version-1 explorer reports built on them) is
  /// bit-compatible with this mode. The co-design explorer's coverage leg
  /// now defaults to kShared + kIncremental (report_version 2; see
  /// codesign/explorer.h — ExplorerOptions::legacy_streams opts back).
  kPerFault,
  /// Streams keyed by (seed, sample index): every fault sees IDENTICAL
  /// stimuli, so the fault-free execution collapses to one golden trace
  /// per campaign. Required by kIncremental; supported by all backends and
  /// bit-identical across them.
  kShared,
};

struct NetlistCampaignOptions {
  int samples_per_fault = 32;  ///< stream length per injected fault
  std::uint64_t seed = 0x2005;
  int fault_stride = 1;  ///< evaluate every k-th fault of each unit
  /// Worker threads for the fault sweep (0 = all hardware threads). Input
  /// streams depend only on (seed, fault index) — or (seed, sample index)
  /// under kShared — so the result is bit-identical for any thread count.
  int threads = 1;
  /// Bit-plane lane width for the batched/incremental backends: one of
  /// {64, 128, 256, 512}, or 0 to resolve via the SCK_LANES env var and
  /// then the CPU default (hw::resolve_lanes). Results are bit-identical
  /// at every width; wider planes only batch more faults per evaluation.
  int lanes = 0;
  NetlistBackend backend = NetlistBackend::kBatched;
  StreamMode stream = StreamMode::kPerFault;
  /// Retire a lane at its first detected sample (kIncremental only): the
  /// remaining samples of that fault are neither simulated nor recorded,
  /// so aggregate totals shrink. The detection set is preserved — a fault
  /// detects at the same first sample either way — which makes this the
  /// cheap mode for "is every fault ever detected?" coverage queries, but
  /// NOT for the sample-exact four-way taxonomy.
  bool fault_dropping = false;
  /// How long each stuck-at fault stays active (fault/duration.h):
  ///   kPermanent     active on every sample — the historical behaviour,
  ///                  and the default (result bytes are pinned against the
  ///                  pre-duration engine by tests/test_netlist_duration.cpp);
  ///   kTransient     active for `transient_samples` consecutive samples
  ///                  starting at a per-fault hash-derived sample; golden
  ///                  before the window, residual state corruption decays
  ///                  (or is detected) after it;
  ///   kIntermittent  active at sample k iff
  ///                  duration_hash(seed, fault, k) % 1000 < duty_permille.
  /// Every activity decision is a STATELESS hash of (seed, global fault
  /// index, sample) — never a campaign-RNG draw — so the duration model is
  /// invariant under backend, lane width, thread count and slice
  /// partition, and turning the knob cannot perturb the operand streams.
  fault::FaultDuration duration = fault::FaultDuration::kPermanent;
  int transient_samples = 1;          ///< window length for kTransient
  std::uint32_t duty_permille = 500;  ///< duty for kIntermittent
  /// Append register-bit SEU flip jobs to the fault universe: one job per
  /// (register, bit < register width), flipping that bit ONCE at a
  /// per-fault hash-derived sample. SEU jobs are one-shot events and
  /// ignore the duration model; stuck-at jobs are unaffected.
  bool seu_faults = false;
};

/// Stuck-at activity of global fault `fault_index` at sample `sample`
/// under the campaign's duration model: the single pure derivation every
/// backend (and the differential oracle) evaluates. SEU jobs do not
/// consult this — see seu_flip_sample.
[[nodiscard]] bool fault_active_at(const NetlistCampaignOptions& options,
                                   std::uint64_t fault_index, int sample);

/// First sample at which fault `fault_index` can diverge from golden
/// (== samples_per_fault when it never activates). For SEU jobs this is
/// the flip sample. The incremental backend skips straight to the batch
/// minimum and records golden outcomes for the prefix.
[[nodiscard]] int first_active_sample(const NetlistCampaignOptions& options,
                                      const struct FaultJob& job,
                                      std::uint64_t fault_index);

/// The one sample at which an SEU job flips its register bit:
/// hash-derived from (seed, global fault index), uniform over the stream.
[[nodiscard]] int seu_flip_sample(const NetlistCampaignOptions& options,
                                  std::uint64_t fault_index);

/// What a FaultJob injects.
enum class FaultKind : unsigned char {
  kStuckAt,  ///< FU-internal stuck-at site, lives under the duration model
  kSeu,      ///< one-shot register-bit flip at a hash-derived sample
};

/// One entry of the (strided) fault job list. For kStuckAt: FU index plus
/// stuck-at site. For kSeu: `fu` is the REGISTER index (netlist.registers)
/// and `seu_bit` the bit to flip; `site` is ignored. The job list order IS
/// the campaign's deterministic reduction order (unit-major, site order
/// within a unit, stride applied per unit; then — when options.seu_faults —
/// register-major, bit order within a register, stride applied per
/// register), and a job's position in the list keys its per-fault input
/// stream under StreamMode::kPerFault. Everything that executes campaign
/// slices — single-host or a remote worker — must agree on this list bit
/// for bit.
struct FaultJob {
  std::int32_t fu = 0;
  hw::FaultSite site;
  FaultKind kind = FaultKind::kStuckAt;
  std::int32_t seu_bit = -1;

  friend bool operator==(const FaultJob&, const FaultJob&) = default;
};

/// The campaign's complete (strided) job list in reduction order. Pure
/// function of (netlist, options.fault_stride) — the campaign service
/// daemon and its workers enumerate independently and cross-check.
[[nodiscard]] std::vector<FaultJob> enumerate_fault_jobs(
    const Netlist& netlist, const NetlistCampaignOptions& options);

/// Executes arbitrary contiguous slices of a campaign's job list with all
/// campaign-wide state (compiled ExecPlan, shared input stream, golden
/// trace, fault cones, reference outputs) computed ONCE at construction.
/// This is the shard-execution engine shared by run_netlist_campaign
/// (one slice = the whole universe) and the campaign-service worker (one
/// slice per wire shard) — both run the exact same inner loops, so the
/// distributed result cannot drift from the single-host one.
///
/// Slice semantics: run_slice(base, count, out) evaluates jobs
/// [base, base + count) and writes job (base + i)'s stats into out[i].
/// Per-job slots depend only on the job's GLOBAL index (stream seeds) and
/// the campaign options — never on the slice boundaries, the lane width,
/// or the thread count — so any partition of [0, jobs().size()) into
/// slices reproduces the single-host per-job vector bit for bit
/// (tests/test_service.cpp holds this at several slicings).
class CampaignSliceRunner {
 public:
  /// Copies `graph` and `netlist` (the service constructs runners from
  /// deserialized payloads; single-host pays one copy per campaign),
  /// validates the campaign preconditions, compiles the ExecPlan and
  /// precomputes the per-campaign shared state for options.backend.
  CampaignSliceRunner(const Dfg& graph, const Netlist& netlist,
                      const NetlistCampaignOptions& options);
  ~CampaignSliceRunner();

  CampaignSliceRunner(const CampaignSliceRunner&) = delete;
  CampaignSliceRunner& operator=(const CampaignSliceRunner&) = delete;

  [[nodiscard]] const Dfg& graph() const;
  [[nodiscard]] const Netlist& netlist() const;
  [[nodiscard]] const ExecPlan& plan() const;
  [[nodiscard]] const NetlistCampaignOptions& options() const;
  /// enumerate_fault_jobs of the wrapped netlist, cached.
  [[nodiscard]] const std::vector<FaultJob>& jobs() const;
  /// The bit-plane width this runner resolved (hw::resolve_lanes applied
  /// to options.lanes once at construction).
  [[nodiscard]] int lanes() const;

  /// Evaluate jobs [base, base + count) into out[0..count). Shards the
  /// slice over options.threads via fault::parallel_shard; safe to call
  /// repeatedly (each call builds fresh simulator contexts over the shared
  /// plan).
  void run_slice(std::uint64_t base, std::size_t count,
                 std::span<fault::CampaignStats> out) const;

  /// Evaluate an arbitrary job-index list: out[i] receives the stats of
  /// global job ids[i]. run_slice is the contiguous special case; the
  /// sampled-campaign engine feeds permuted prefixes through this.
  void run_jobs(std::span<const std::uint64_t> ids,
                std::span<fault::CampaignStats> out) const;

 private:
  struct Impl;
  std::unique_ptr<const Impl> impl_;
};

/// Fold per-job stats into the campaign report, in job (fault-index)
/// order: the single deterministic reduction both run_netlist_campaign and
/// the service daemon's grid-index-slot reduction use. `jobs` must be the
/// full enumerate_fault_jobs list of `netlist` and `per_job` its
/// slot-for-slot stats.
[[nodiscard]] NetlistCampaignResult reduce_campaign_slices(
    const Netlist& netlist, std::span<const FaultJob> jobs,
    std::span<const fault::CampaignStats> per_job);

/// Sweep every FU fault of `netlist` (generated from `graph`), comparing
/// against the fault-free reference evaluation of `graph`. Netlists with a
/// CED "error" output use it as the detection flag; plain netlists (no
/// error output) report every erroneous sample as masked — the baseline
/// that shows what the checks buy. Implemented as
/// CampaignSliceRunner::run_slice over the whole universe followed by
/// reduce_campaign_slices — the same code path the campaign service
/// distributes.
[[nodiscard]] NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options);

/// Confidence-interval sampled campaigns: instead of sweeping the whole
/// fault universe, evaluate a seeded random permutation of it in fixed
/// blocks until the Wilson interval on detection coverage is tight enough.
struct SampledCampaignOptions {
  /// Seed of the sampling permutation (Fisher–Yates over the job list,
  /// drawn from its own Xoshiro stream — independent of the stimulus
  /// seed so the same campaign can be resampled).
  std::uint64_t sample_seed = 0xCED5;
  /// Jobs evaluated between early-stop checks. The stop decision is taken
  /// ONLY at block boundaries over the prefix evaluated so far, which is a
  /// pure function of (options, sample_seed, block) — never of thread
  /// count, lane width or backend — so every configuration stops after the
  /// same number of jobs (tests/test_sampled_campaign.cpp holds this at
  /// threads 1/2/8).
  std::size_t block = 256;
  /// Stop once the Wilson half-width on detection coverage is ≤ this.
  double target_half_width = 0.02;
  /// Critical value for the interval (1.96 ≈ 95%).
  double z = 1.96;
  /// Evaluate at most this many jobs, 0 = no cap (the universe bounds it).
  std::size_t max_jobs = 0;
};

struct SampledNetlistCampaignResult {
  /// Aggregate + per-unit stats over the evaluated sample only, reduced in
  /// global job-index order (NOT permutation order) — byte-identical at any
  /// thread/lane/backend configuration that evaluates the same prefix.
  NetlistCampaignResult result;
  /// Jobs actually evaluated (a multiple of block unless the universe ran
  /// out) and the universe they were drawn from.
  std::uint64_t sampled_jobs = 0;
  std::uint64_t universe_jobs = 0;
  /// Wilson interval on per-fault detection coverage: the fraction of
  /// sampled faults with detections() > 0, with [lo, hi] at z.
  fault::WilsonInterval detection_coverage;
  /// True iff the interval reached target_half_width before the universe
  /// (or max_jobs) ran out.
  bool converged = false;

  friend bool operator==(const SampledNetlistCampaignResult&,
                         const SampledNetlistCampaignResult&) = default;
};

/// Run a sampled campaign. Evaluating the full universe (because the stop
/// criterion never fired or max_jobs/universe was reached first) yields
/// `result` EXACTLY equal to run_netlist_campaign's — sampling only ever
/// changes which prefix of the permutation is evaluated, never any
/// per-job outcome.
[[nodiscard]] SampledNetlistCampaignResult run_sampled_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options,
    const SampledCampaignOptions& sampling);

}  // namespace sck::hls

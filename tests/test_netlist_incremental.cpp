// Differential suites for the golden-trace incremental backend and the
// shared-input-stream mode: under StreamMode::kShared every backend must
// produce bit-identical NetlistCampaignResults, and kIncremental — which
// replays only the union fault cone of each batch and splices everything
// else from the golden trace — must match kBatched over the FULL FU fault
// universes of the synthesized netlists at any thread count, including
// partial final batches. These tests are the contract that lets coverage
// campaigns switch to the incremental engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"
#include "hls/schedule.h"
#include "netlist_test_util.h"

namespace sck::hls {
namespace {

/// The incremental contract on one design: under a shared stream, the
/// FULL FU fault universe swept by kIncremental must be bit-identical to
/// kBatched (and both cover real work) at thread counts 1/2/8 — the lane
/// packing of a full universe always ends in a partial final batch here,
/// so the prefix-mask path is exercised on every design.
void expect_incremental_identical(const Dfg& g, const Netlist& nl,
                                  int samples, std::uint64_t seed) {
  NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = seed;
  opt.stream = StreamMode::kShared;

  opt.backend = NetlistBackend::kBatched;
  opt.threads = 1;
  const auto batched_r = run_netlist_campaign(g, nl, opt);
  EXPECT_GT(batched_r.aggregate.total(), 0u);

  opt.backend = NetlistBackend::kIncremental;
  for (const int threads : {1, 2, 8}) {
    opt.threads = threads;
    const auto inc_r = run_netlist_campaign(g, nl, opt);
    EXPECT_TRUE(same_campaign_result(batched_r, inc_r))
        << nl.name << ": incremental diverged at " << threads << " thread(s)";
  }
}

TEST(NetlistIncremental, FirClassBasedWidth4) {
  const Dfg g = ced(build_fir(FirSpec{{3, -5, 7}, 4}), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "fir4"), 8, 0xA1);
}

TEST(NetlistIncremental, FirClassBasedWidth8) {
  const Dfg g =
      ced(build_fir(FirSpec{{3, -5, 7, -5, 3}, 8}), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "fir8"), 6, 0xA2);
}

TEST(NetlistIncremental, FirEmbeddedWidth8) {
  const Dfg g = ced(build_fir(FirSpec{{2, 3, -5, 7}, 8}), CedStyle::kEmbedded);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "fire8"), 6, 0xA3);
}

TEST(NetlistIncremental, PlainFirNoErrorOutputWidth8) {
  // Plain netlists exercise the no-error-output path (nothing ever
  // detects; every erroneous sample is masked).
  const Dfg g = build_fir(FirSpec{{1, -2, 3}, 8});
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "firp"), 6, 0xA4);
}

TEST(NetlistIncremental, IirWidth4) {
  const Dfg g = ced(build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 4}),
                    CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "iir4"), 8, 0xA5);
}

TEST(NetlistIncremental, IirWidth8) {
  // The IIR's feedback registers stress the cross-sample cone fixpoint: a
  // perturbed state register re-taints every later sample.
  const Dfg g = ced(build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 8}),
                    CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "iir8"), 6, 0xA6);
}

TEST(NetlistIncremental, DivmodWidth4) {
  // Covers the divider's batch path plus the Eq/IsZero comparator glue.
  const Dfg g = ced(build_divmod(4), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "dm4"), 8, 0xA7);
}

TEST(NetlistIncremental, DivmodWidth8) {
  const Dfg g = ced(build_divmod(8), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "dm8"), 4, 0xA8);
}

TEST(NetlistIncremental, MatvecClassBasedWidth4) {
  // First multi-output (non-divmod) workload: per-output check cones and
  // multi-output cone fencing, 2 data outputs + error.
  const Dfg g = ced(build_matvec({{2, -3, 1}, {-1, 4, 2}}, 4),
                    CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "mv4"), 8, 0xB1);
}

TEST(NetlistIncremental, MatvecClassBasedWidth8) {
  const Dfg g = ced(build_matvec({{2, -3, 1}, {-1, 4, 2}}, 8),
                    CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "mv8"), 4, 0xB2);
}

TEST(NetlistIncremental, MatvecPlainMultiOutputWidth8) {
  // Plain multi-output: every erroneous sample on any of the three
  // outputs must classify as masked identically across backends.
  const Dfg g = build_matvec({{1, 2}, {3, -1}, {-2, 5}}, 8);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "mvp"), 6, 0xB3);
}

TEST(NetlistIncremental, MovingSumClassBasedWidth4) {
  // The most state-heavy netlist in the set: a 4-deep window + running-sum
  // register against two data ops — faults persist in state across many
  // samples, stressing the cross-sample cone fixpoint and the golden
  // register timeline.
  const Dfg g = ced(build_moving_sum(4, 4), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "ms4"), 12, 0xB4);
}

TEST(NetlistIncremental, MovingSumClassBasedWidth8) {
  const Dfg g = ced(build_moving_sum(6, 8), CedStyle::kClassBased);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "ms8"), 10, 0xB5);
}

TEST(NetlistIncremental, MovingSumEmbeddedWidth8) {
  const Dfg g = ced(build_moving_sum(4, 8), CedStyle::kEmbedded);
  expect_incremental_identical(
      g, synthesize(g, ResourceConstraints::min_area(), "mse8"), 10, 0xB6);
}

// ---- shared-stream mode across all three backends -------------------------

TEST(NetlistIncremental, SharedStreamIdenticalAcrossAllBackends) {
  // The scalar interpreter anchors the shared-stream semantics: batched
  // and incremental must reproduce it bit for bit (full universe incl.
  // the partial final batch; multi-threaded on the batched leg).
  const Dfg g =
      ced(build_fir(FirSpec{{2, 3, -5, 7}, 8}), CedStyle::kClassBased);
  const Netlist nl = synthesize(g, ResourceConstraints::min_area(), "shr");

  NetlistCampaignOptions opt;
  opt.samples_per_fault = 8;
  opt.fault_stride = 3;  // subsample for the scalar anchor's sake
  opt.seed = 0x5A5A;
  opt.stream = StreamMode::kShared;

  opt.backend = NetlistBackend::kScalar;
  opt.threads = 1;
  const auto scalar_r = run_netlist_campaign(g, nl, opt);
  EXPECT_GT(scalar_r.aggregate.observable_errors(), 0u);

  opt.backend = NetlistBackend::kBatched;
  opt.threads = 3;
  const auto batched_r = run_netlist_campaign(g, nl, opt);
  EXPECT_TRUE(same_campaign_result(scalar_r, batched_r));

  opt.backend = NetlistBackend::kIncremental;
  opt.threads = 2;
  const auto inc_r = run_netlist_campaign(g, nl, opt);
  EXPECT_TRUE(same_campaign_result(scalar_r, inc_r));
}

TEST(NetlistIncremental, SharedStreamDiffersFromPerFaultStream) {
  // The two stream modes must not silently alias: same seed, different
  // keying, different stimuli — so the aggregates (here the per-unit
  // silent/erroneous split over a full universe) almost surely differ.
  const Dfg g =
      ced(build_fir(FirSpec{{2, 3, -5, 7}, 8}), CedStyle::kClassBased);
  const Netlist nl = synthesize(g, ResourceConstraints::min_area(), "mode");

  NetlistCampaignOptions opt;
  opt.samples_per_fault = 8;
  opt.fault_stride = 7;
  opt.seed = 0xC0DE;
  opt.backend = NetlistBackend::kBatched;

  opt.stream = StreamMode::kPerFault;
  const auto per_fault_r = run_netlist_campaign(g, nl, opt);
  opt.stream = StreamMode::kShared;
  const auto shared_r = run_netlist_campaign(g, nl, opt);
  EXPECT_EQ(per_fault_r.fault_universe_size, shared_r.fault_universe_size);
  EXPECT_FALSE(same_campaign_result(per_fault_r, shared_r));
}

// ---- fault dropping -------------------------------------------------------

/// The drop-mode contract on one design: dropping retires a lane after
/// its FIRST detected sample. Until that sample the simulation is
/// identical to the full run, so per unit:
///  - a unit detects in the drop run iff it detects in the full run;
///  - units that never detect are untouched by dropping (bit-identical);
///  - dropped lanes only ever remove samples (totals shrink, never grow).
/// Checked at thread counts 1/2/8 (the full universes here end in partial
/// final batches, so the prefix-mask retire path is always exercised).
void expect_drop_consistent(const Dfg& g, const Netlist& nl, int samples,
                            std::uint64_t seed, int fault_stride = 1) {
  NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = seed;
  opt.fault_stride = fault_stride;
  opt.stream = StreamMode::kShared;
  opt.backend = NetlistBackend::kIncremental;

  const auto full_r = run_netlist_campaign(g, nl, opt);
  opt.fault_dropping = true;
  for (const int threads : {1, 2, 8}) {
    opt.threads = threads;
    const auto drop_r = run_netlist_campaign(g, nl, opt);
    ASSERT_EQ(drop_r.per_unit.size(), full_r.per_unit.size()) << nl.name;
    EXPECT_EQ(drop_r.fault_universe_size, full_r.fault_universe_size);
    EXPECT_LE(drop_r.aggregate.total(), full_r.aggregate.total());
    EXPECT_LT(drop_r.aggregate.total(), full_r.aggregate.total())
        << nl.name << ": a self-checking design that never detects anything?";
    for (std::size_t u = 0; u < full_r.per_unit.size(); ++u) {
      const fault::CampaignStats& full = full_r.per_unit[u].stats;
      const fault::CampaignStats& drop = drop_r.per_unit[u].stats;
      EXPECT_EQ(drop.detections() > 0, full.detections() > 0)
          << nl.name << ": " << full_r.per_unit[u].fu_name;
      EXPECT_LE(drop.total(), full.total());
      if (full.detections() == 0) {
        EXPECT_EQ(drop.silent_correct, full.silent_correct);
        EXPECT_EQ(drop.masked, full.masked);
      }
    }
  }
}

TEST(NetlistIncremental, FaultDroppingPreservesTheDetectionSet) {
  const Dfg g =
      ced(build_fir(FirSpec{{3, -5, 7, -5, 3}, 8}), CedStyle::kClassBased);
  expect_drop_consistent(
      g, synthesize(g, ResourceConstraints::min_area(), "drop"), 12, 0xD0);
}

TEST(NetlistIncremental, FaultDroppingOnMatvec) {
  // Multi-output drop semantics: a lane retires on the shared error flag,
  // which aggregates the per-output check cones — consistency must hold
  // for faults observable on either data output.
  const Dfg g = ced(build_matvec({{2, -3, 1}, {-1, 4, 2}}, 8),
                    CedStyle::kClassBased);
  expect_drop_consistent(
      g, synthesize(g, ResourceConstraints::min_area(), "dropmv"), 10, 0xD1);
}

TEST(NetlistIncremental, FaultDroppingOnMatvecStridedPartialBatch) {
  // fault_stride shrinks the job list to a single partial batch, so the
  // retire mask and the batch prefix mask interact on the same word.
  const Dfg g = ced(build_matvec({{2, -3, 1}, {-1, 4, 2}}, 4),
                    CedStyle::kClassBased);
  expect_drop_consistent(g,
                         synthesize(g, ResourceConstraints::min_area(), "dsmv"),
                         10, 0xD2, /*fault_stride=*/9);
}

TEST(NetlistIncremental, FaultDroppingOnMovingSum) {
  // State-heavy drop semantics: window faults often detect only several
  // samples after injection (the corrupt value must reach the running
  // sum), so retire points spread across the whole sample axis.
  const Dfg g = ced(build_moving_sum(4, 8), CedStyle::kClassBased);
  expect_drop_consistent(
      g, synthesize(g, ResourceConstraints::min_area(), "dropms"), 14, 0xD3);
}

TEST(NetlistIncremental, FaultDroppingOnMovingSumStridedPartialBatch) {
  const Dfg g = ced(build_moving_sum(6, 4), CedStyle::kClassBased);
  expect_drop_consistent(g,
                         synthesize(g, ResourceConstraints::min_area(), "dsms"),
                         12, 0xD4, /*fault_stride=*/5);
}

// ---- cone analysis --------------------------------------------------------

TEST(NetlistIncremental, FaultConesCoverEveryFusOwnOps) {
  // Minimal structural sanity on the cone masks themselves: every FU's
  // cone contains at least all ops executing on that FU, and no cone
  // exceeds the plan.
  const Dfg g =
      ced(build_fir(FirSpec{{3, -5, 7}, 8}), CedStyle::kClassBased);
  const Netlist nl = synthesize(g, ResourceConstraints::min_area(), "cone");
  const ExecPlan plan = compile_execution_plan(nl);
  const FaultCones cones(plan);
  ASSERT_EQ(cones.num_fus(), static_cast<int>(nl.fus.size()));
  for (int f = 0; f < cones.num_fus(); ++f) {
    const auto mask = cones.op_cone(f);
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
      if (plan.ops[i].fu != f) continue;
      EXPECT_TRUE((mask[i >> 6] >> (i & 63)) & 1)
          << "op " << i << " runs on FU " << f << " but is not in its cone";
    }
    EXPECT_LE(cones.cone_op_count(f), plan.ops.size());
  }
}

}  // namespace
}  // namespace sck::hls

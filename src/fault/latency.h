// Detection-latency analysis.
//
// §4 of the paper argues that detecting a fault even when the produced
// result is still correct "allows the reduction of the probability of
// having a second fault occur before the first one is detected, thus
// improving the system reliability". This module quantifies that claim: for
// a fault injected into a unit executing a random stream of checked
// operations, it measures how many operations pass until (a) the check
// first fires and (b) the first erroneous result is produced. When (a)
// precedes (b), the latent fault was reported before it ever corrupted
// data — the early-warning benefit classical self-checking logic (which
// only reacts to observable errors) cannot provide.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "hw/fault_site.h"
#include "hw/unit.h"

namespace sck::fault {

struct LatencyStats {
  std::uint64_t faults_measured = 0;
  std::uint64_t detected_runs = 0;      ///< runs where the check ever fired
  std::uint64_t erroneous_runs = 0;     ///< runs with some erroneous result
  std::uint64_t early_warning_runs = 0; ///< detection strictly before the
                                        ///< first erroneous result
  double mean_ops_to_detection = 0.0;   ///< over detected runs
  double mean_ops_to_first_error = 0.0; ///< over erroneous runs
};

/// Measure detection latency for every fault in `unit`'s universe (or a
/// deterministic subsample thereof via `stride`). Per fault, a fresh stream
/// of `horizon` random operand pairs drives the trial; the trial reports
/// per-operation outcomes through its classify result.
template <typename Trial, typename Unit>
LatencyStats measure_detection_latency(Unit& unit, const Trial& trial,
                                       int width, int horizon,
                                       std::uint64_t seed, int stride = 1) {
  SCK_EXPECTS(horizon > 0 && stride > 0);
  LatencyStats stats;
  std::uint64_t total_detect_ops = 0;
  std::uint64_t total_error_ops = 0;

  const auto universe = unit.fault_universe();
  Xoshiro256 rng(seed);
  for (std::size_t k = 0; k < universe.size();
       k += static_cast<std::size_t>(stride)) {
    unit.set_fault(universe[k]);
    ++stats.faults_measured;

    int first_detection = -1;
    int first_error = -1;
    for (int op = 0; op < horizon; ++op) {
      const Word a = rng.bounded(Word{1} << width);
      const Word b = rng.bounded(Word{1} << width);
      const Outcome o = trial(a, b);
      if (first_detection < 0 && (o == Outcome::kDetectedCorrect ||
                                  o == Outcome::kDetectedErroneous)) {
        first_detection = op;
      }
      if (first_error < 0 && (o == Outcome::kDetectedErroneous ||
                              o == Outcome::kMasked)) {
        first_error = op;
      }
      if (first_detection >= 0 && first_error >= 0) break;
    }
    unit.clear_fault();

    if (first_detection >= 0) {
      ++stats.detected_runs;
      total_detect_ops += static_cast<std::uint64_t>(first_detection);
    }
    if (first_error >= 0) {
      ++stats.erroneous_runs;
      total_error_ops += static_cast<std::uint64_t>(first_error);
    }
    if (first_detection >= 0 &&
        (first_error < 0 || first_detection < first_error)) {
      ++stats.early_warning_runs;
    }
  }

  if (stats.detected_runs > 0) {
    stats.mean_ops_to_detection =
        static_cast<double>(total_detect_ops) /
        static_cast<double>(stats.detected_runs);
  }
  if (stats.erroneous_runs > 0) {
    stats.mean_ops_to_first_error =
        static_cast<double>(total_error_ops) /
        static_cast<double>(stats.erroneous_runs);
  }
  return stats;
}

}  // namespace sck::fault

#include "service/wire.h"

#include <bit>
#include <cstring>

#include "common/assert.h"
#include "common/word.h"
#include "hls/schedule.h"

namespace sck::service {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives, same discipline as src/store/store.cpp.

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_i32(std::vector<unsigned char>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_u8(std::vector<unsigned char>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_bool(std::vector<unsigned char>& out, bool v) {
  put_u8(out, v ? 1 : 0);
}

void put_i64(std::vector<unsigned char>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<unsigned char>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_stats(std::vector<unsigned char>& out,
               const fault::CampaignStats& s) {
  put_u64(out, s.silent_correct);
  put_u64(out, s.detected_correct);
  put_u64(out, s.detected_erroneous);
  put_u64(out, s.masked);
}

[[nodiscard]] std::uint64_t fnv1a(const unsigned char* data,
                                  std::size_t size) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ULL;
  }
  return h;
}

/// Bounds-checked little-endian reader over a payload span. Every accessor
/// reports failure by returning false and latching ok() — malformed bytes
/// can only produce a clean parse failure, never UB or an abort.
class Reader {
 public:
  explicit Reader(std::span<const unsigned char> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (!ok_ || bytes_.size() - at_ < 8) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 8;
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (!ok_ || bytes_.size() - at_ < 4) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 4;
    return true;
  }

  [[nodiscard]] bool i32(std::int32_t& v) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }

  [[nodiscard]] bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  [[nodiscard]] bool f64(double& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = std::bit_cast<double>(u);
    return true;
  }

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (!ok_ || bytes_.size() - at_ < 1) return fail();
    v = bytes_[at_++];
    return true;
  }

  /// Strict boolean: exactly 0 or 1 (any other byte is garbage, reject).
  [[nodiscard]] bool boolean(bool& v) {
    std::uint8_t b = 0;
    if (!u8(b)) return false;
    if (b > 1) return fail();
    v = b != 0;
    return true;
  }

  [[nodiscard]] bool str(std::string& s) {
    std::uint64_t len = 0;
    if (!u64(len)) return false;
    if (len > remaining()) return fail();
    s.assign(reinterpret_cast<const char*>(bytes_.data() + at_),
             static_cast<std::size_t>(len));
    at_ += static_cast<std::size_t>(len);
    return true;
  }

  [[nodiscard]] bool stats(fault::CampaignStats& s) {
    return u64(s.silent_correct) && u64(s.detected_correct) &&
           u64(s.detected_erroneous) && u64(s.masked);
  }

  /// Element count whose elements occupy at least `min_bytes` each: a
  /// count the remaining bytes cannot possibly hold is rejected BEFORE any
  /// allocation sized by it.
  [[nodiscard]] bool count(std::uint64_t& n, std::size_t min_bytes) {
    if (!u64(n)) return false;
    if (min_bytes == 0) min_bytes = 1;
    if (n > remaining() / min_bytes) return fail();
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - at_; }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && at_ == bytes_.size(); }
  bool fail() {
    ok_ = false;
    return false;
  }

 private:
  std::span<const unsigned char> bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Dfg codec. Nodes are append-only with stable ids and (outside kReg
// next-value edges) strictly backward operand references, so serializing
// the node array in id order captures the whole graph — the input/output/
// state-reg port lists are reproduced by replaying the builders in the
// same order.

void put_dfg(std::vector<unsigned char>& out, const hls::Dfg& g) {
  put_u64(out, g.size());
  for (std::size_t id = 0; id < g.size(); ++id) {
    const hls::Node& n = g.node(static_cast<hls::NodeId>(id));
    put_u32(out, static_cast<std::uint32_t>(n.op));
    put_u32(out, static_cast<std::uint32_t>(n.width));
    put_u64(out, n.ins.size());
    for (const hls::NodeId in : n.ins) put_i32(out, in);
    put_i64(out, n.value);
    put_str(out, n.name);
    put_bool(out, n.is_check);
    put_i32(out, n.check_group);
    put_i32(out, n.release_delay);
  }
}

/// Strict inverse of put_dfg: every op code, width, arity and operand
/// reference is validated BEFORE the corresponding builder runs, so the
/// builders' SCK_EXPECTS aborts are unreachable from wire bytes — a
/// malformed graph is a clean nullopt. Reconstruction invariant: builder
/// ids are sequential appends, so node k of the wire becomes NodeId k.
[[nodiscard]] bool get_dfg(Reader& r, hls::Dfg& g) {
  std::uint64_t count = 0;
  // Minimum encoded node: op + width + ins count + value + name length +
  // is_check + check_group + release_delay.
  if (!r.count(count, 4 + 4 + 8 + 8 + 8 + 1 + 4 + 4)) return false;
  struct RegFix {
    hls::NodeId reg;
    hls::NodeId next;
  };
  std::vector<RegFix> reg_fixes;
  for (std::uint64_t id = 0; id < count; ++id) {
    std::uint32_t op_raw = 0;
    std::uint32_t width = 0;
    std::uint64_t arity = 0;
    if (!r.u32(op_raw) || !r.u32(width) || !r.count(arity, 4)) return false;
    if (op_raw > static_cast<std::uint32_t>(hls::Op::kOr)) return r.fail();
    const auto op = static_cast<hls::Op>(op_raw);
    if (arity != static_cast<std::uint64_t>(hls::op_arity(op))) {
      return r.fail();
    }
    if (width < 1 || width > static_cast<std::uint32_t>(kMaxWidth)) {
      return r.fail();
    }
    std::vector<hls::NodeId> ins(static_cast<std::size_t>(arity));
    for (hls::NodeId& in : ins) {
      if (!r.i32(in)) return false;
      if (op == hls::Op::kReg) {
        // A register's next-value edge is sequential: forward references
        // (and kNoNode for a not-yet-wired register) are legal.
        if (in != hls::kNoNode &&
            (in < 0 || static_cast<std::uint64_t>(in) >= count)) {
          return r.fail();
        }
      } else {
        // Combinational operands strictly precede their consumer — true
        // of every graph the builders can produce, and what makes the
        // graph acyclic by construction on replay.
        if (in < 0 || static_cast<std::uint64_t>(in) >= id) return r.fail();
      }
    }
    std::int64_t value = 0;
    std::string name;
    bool is_check = false;
    std::int32_t check_group = 0;
    std::int32_t release_delay = 0;
    if (!r.i64(value) || !r.str(name) || !r.boolean(is_check) ||
        !r.i32(check_group) || !r.i32(release_delay)) {
      return false;
    }
    if (check_group < hls::kSharedGroup || release_delay < 0) return r.fail();

    hls::NodeId built = hls::kNoNode;
    switch (op) {
      case hls::Op::kInput:
        built = g.input(name, static_cast<int>(width));
        break;
      case hls::Op::kConst:
        built = g.constant(static_cast<long long>(value),
                           static_cast<int>(width));
        break;
      case hls::Op::kReg:
        built = g.state_reg(name, static_cast<int>(width));
        if (ins[0] != hls::kNoNode) {
          reg_fixes.push_back(RegFix{built, ins[0]});
        }
        break;
      case hls::Op::kOutput:
        // output() derives its width from the source node; a disagreeing
        // encoded width means the bytes do not describe a buildable graph.
        if (g.node(ins[0]).width != static_cast<int>(width)) return r.fail();
        built = g.output(name, ins[0]);
        break;
      default:
        built = g.op(op, ins, static_cast<int>(width));
        break;
    }
    if (static_cast<std::uint64_t>(built) != id) return r.fail();
    hls::Node& n = g.mutable_node(built);
    n.value = static_cast<long long>(value);
    n.name = name;
    n.is_check = is_check;
    n.check_group = check_group;
    n.release_delay = release_delay;
  }
  for (const RegFix& fix : reg_fixes) {
    // Validated above: fix.next in [0, count), all nodes now exist.
    g.set_reg_next(fix.reg, fix.next);
  }
  return r.ok();
}

// ---------------------------------------------------------------------------
// Netlist codec.

void put_operand(std::vector<unsigned char>& out, const hls::Operand& o) {
  put_u32(out, static_cast<std::uint32_t>(o.kind));
  put_i32(out, o.index);
  put_i64(out, o.value);
}

[[nodiscard]] bool get_operand(Reader& r, const hls::Netlist& n,
                               hls::Operand& o) {
  std::uint32_t kind_raw = 0;
  std::int32_t index = 0;
  std::int64_t value = 0;
  if (!r.u32(kind_raw) || !r.i32(index) || !r.i64(value)) return false;
  if (kind_raw > static_cast<std::uint32_t>(hls::Operand::Kind::kWire)) {
    return r.fail();
  }
  o.kind = static_cast<hls::Operand::Kind>(kind_raw);
  o.index = index;
  o.value = static_cast<long long>(value);
  switch (o.kind) {
    case hls::Operand::Kind::kReg:
      if (index < 0 || static_cast<std::size_t>(index) >= n.regs.size()) {
        return r.fail();
      }
      break;
    case hls::Operand::Kind::kInput:
      if (index < 0 ||
          static_cast<std::size_t>(index) >= n.input_names.size()) {
        return r.fail();
      }
      break;
    case hls::Operand::Kind::kWire:
      if (index < 0) return r.fail();  // producer NodeId
      break;
    case hls::Operand::Kind::kNone:
    case hls::Operand::Kind::kConst:
      break;
  }
  return true;
}

void put_netlist(std::vector<unsigned char>& out, const hls::Netlist& n) {
  put_str(out, n.name);
  put_u32(out, static_cast<std::uint32_t>(n.data_width));
  put_u32(out, static_cast<std::uint32_t>(n.num_steps));
  put_u64(out, n.fus.size());
  for (const hls::FuInstance& fu : n.fus) {
    put_u32(out, static_cast<std::uint32_t>(fu.cls));
    put_u32(out, static_cast<std::uint32_t>(fu.width));
    put_i32(out, fu.group);
    put_str(out, fu.name);
  }
  put_u64(out, n.regs.size());
  for (const hls::RegisterInfo& reg : n.regs) {
    put_u32(out, static_cast<std::uint32_t>(reg.width));
    put_bool(out, reg.architectural);
    put_str(out, reg.name);
  }
  put_u64(out, n.input_names.size());
  for (const std::string& name : n.input_names) put_str(out, name);
  put_u64(out, n.outputs.size());
  for (const hls::OutputPort& port : n.outputs) {
    put_str(out, port.name);
    put_operand(out, port.source);
  }
  put_u64(out, n.state_loads.size());
  for (const hls::StateLoad& load : n.state_loads) {
    put_i32(out, load.dst_reg);
    put_operand(out, load.source);
  }
  put_u64(out, n.micro.size());
  for (const hls::MicroOp& m : n.micro) {
    put_i32(out, m.step);
    put_i32(out, m.node);
    put_u32(out, static_cast<std::uint32_t>(m.op));
    put_i32(out, m.fu);
    put_operand(out, m.src[0]);
    put_operand(out, m.src[1]);
    put_i32(out, m.dst_reg);
  }
}

[[nodiscard]] bool get_netlist(Reader& r, hls::Netlist& n) {
  std::uint32_t data_width = 0;
  std::uint32_t num_steps = 0;
  if (!r.str(n.name) || !r.u32(data_width) || !r.u32(num_steps)) return false;
  if (data_width < 1 || data_width > static_cast<std::uint32_t>(kMaxWidth)) {
    return r.fail();
  }
  if (num_steps > (1u << 20)) return r.fail();
  n.data_width = static_cast<int>(data_width);
  n.num_steps = static_cast<int>(num_steps);

  std::uint64_t count = 0;
  if (!r.count(count, 4 + 4 + 4 + 8)) return false;
  n.fus.resize(static_cast<std::size_t>(count));
  for (hls::FuInstance& fu : n.fus) {
    std::uint32_t cls = 0;
    std::uint32_t width = 0;
    if (!r.u32(cls) || !r.u32(width) || !r.i32(fu.group) || !r.str(fu.name)) {
      return false;
    }
    if (cls >= static_cast<std::uint32_t>(hls::kResourceClassCount)) {
      return r.fail();
    }
    if (width > static_cast<std::uint32_t>(kMaxWidth)) return r.fail();
    if (fu.group < hls::kSharedGroup) return r.fail();
    fu.cls = static_cast<hls::ResourceClass>(cls);
    fu.width = static_cast<int>(width);
  }

  if (!r.count(count, 4 + 1 + 8)) return false;
  n.regs.resize(static_cast<std::size_t>(count));
  for (hls::RegisterInfo& reg : n.regs) {
    std::uint32_t width = 0;
    if (!r.u32(width) || !r.boolean(reg.architectural) || !r.str(reg.name)) {
      return false;
    }
    if (width > static_cast<std::uint32_t>(kMaxWidth)) return r.fail();
    reg.width = static_cast<int>(width);
  }

  if (!r.count(count, 8)) return false;
  n.input_names.resize(static_cast<std::size_t>(count));
  for (std::string& name : n.input_names) {
    if (!r.str(name)) return false;
  }

  if (!r.count(count, 8 + 16)) return false;
  n.outputs.resize(static_cast<std::size_t>(count));
  for (hls::OutputPort& port : n.outputs) {
    if (!r.str(port.name) || !get_operand(r, n, port.source)) return false;
  }

  if (!r.count(count, 4 + 16)) return false;
  n.state_loads.resize(static_cast<std::size_t>(count));
  for (hls::StateLoad& load : n.state_loads) {
    if (!r.i32(load.dst_reg) || !get_operand(r, n, load.source)) return false;
    if (load.dst_reg < 0 ||
        static_cast<std::size_t>(load.dst_reg) >= n.regs.size()) {
      return r.fail();
    }
  }

  if (!r.count(count, 4 + 4 + 4 + 4 + 32 + 4)) return false;
  n.micro.resize(static_cast<std::size_t>(count));
  for (hls::MicroOp& m : n.micro) {
    std::uint32_t op_raw = 0;
    if (!r.i32(m.step) || !r.i32(m.node) || !r.u32(op_raw) || !r.i32(m.fu) ||
        !get_operand(r, n, m.src[0]) || !get_operand(r, n, m.src[1]) ||
        !r.i32(m.dst_reg)) {
      return false;
    }
    if (m.step < 0 || m.step >= n.num_steps) return r.fail();
    if (m.node < 0) return r.fail();
    if (op_raw > static_cast<std::uint32_t>(hls::Op::kOr)) return r.fail();
    m.op = static_cast<hls::Op>(op_raw);
    if (m.fu < -1 ||
        (m.fu >= 0 && static_cast<std::size_t>(m.fu) >= n.fus.size())) {
      return r.fail();
    }
    if (m.dst_reg < -1 ||
        (m.dst_reg >= 0 &&
         static_cast<std::size_t>(m.dst_reg) >= n.regs.size())) {
      return r.fail();
    }
  }
  return r.ok();
}

// ---------------------------------------------------------------------------
// Campaign options codec.

void put_options(std::vector<unsigned char>& out,
                 const hls::NetlistCampaignOptions& o) {
  put_i32(out, o.samples_per_fault);
  put_u64(out, o.seed);
  put_i32(out, o.fault_stride);
  put_i32(out, o.threads);
  put_i32(out, o.lanes);
  put_u32(out, static_cast<std::uint32_t>(o.backend));
  put_u32(out, static_cast<std::uint32_t>(o.stream));
  put_bool(out, o.fault_dropping);
  put_u32(out, static_cast<std::uint32_t>(o.duration));
  put_i32(out, o.transient_samples);
  put_u32(out, o.duty_permille);
  put_bool(out, o.seu_faults);
}

[[nodiscard]] bool get_options(Reader& r, hls::NetlistCampaignOptions& o) {
  std::uint32_t backend = 0;
  std::uint32_t stream = 0;
  if (!r.i32(o.samples_per_fault) || !r.u64(o.seed) || !r.i32(o.fault_stride) ||
      !r.i32(o.threads) || !r.i32(o.lanes) || !r.u32(backend) ||
      !r.u32(stream) || !r.boolean(o.fault_dropping)) {
    return false;
  }
  if (o.samples_per_fault < 1 || o.samples_per_fault > (1 << 24)) {
    return r.fail();
  }
  if (o.fault_stride < 1 || o.threads < 0 || o.threads > (1 << 16)) {
    return r.fail();
  }
  if (o.lanes != 0 && o.lanes != 64 && o.lanes != 128 && o.lanes != 256 &&
      o.lanes != 512) {
    return r.fail();
  }
  if (backend >
      static_cast<std::uint32_t>(hls::NetlistBackend::kIncremental)) {
    return r.fail();
  }
  if (stream > static_cast<std::uint32_t>(hls::StreamMode::kShared)) {
    return r.fail();
  }
  o.backend = static_cast<hls::NetlistBackend>(backend);
  o.stream = static_cast<hls::StreamMode>(stream);
  // Cross-field contracts the campaign engine asserts (SCK_EXPECTS): a
  // wire payload violating them must be a clean parse failure, not an
  // abort inside CampaignSliceRunner.
  if (o.backend == hls::NetlistBackend::kIncremental &&
      o.stream != hls::StreamMode::kShared) {
    return r.fail();
  }
  if (o.fault_dropping && o.backend != hls::NetlistBackend::kIncremental) {
    return r.fail();
  }
  std::uint32_t duration = 0;
  if (!r.u32(duration) || !r.i32(o.transient_samples) ||
      !r.u32(o.duty_permille) || !r.boolean(o.seu_faults)) {
    return false;
  }
  if (duration >
      static_cast<std::uint32_t>(fault::FaultDuration::kIntermittent)) {
    return r.fail();
  }
  o.duration = static_cast<fault::FaultDuration>(duration);
  if (o.transient_samples < 1 || o.duty_permille > 1000) return r.fail();
  return true;
}

// ---------------------------------------------------------------------------
// Campaign payload (graph + netlist + options) with the cross-structure
// invariants the campaign engine would otherwise abort on.

void put_campaign(std::vector<unsigned char>& out, const CampaignPayload& c) {
  put_dfg(out, c.graph);
  put_netlist(out, c.netlist);
  put_options(out, c.options);
}

[[nodiscard]] bool get_campaign(Reader& r, CampaignPayload& c) {
  if (!get_dfg(r, c.graph) || !get_netlist(r, c.netlist) ||
      !get_options(r, c.options)) {
    return false;
  }
  // CampaignSliceRunner's preconditions: netlist ports mirror the graph's.
  if (c.netlist.input_names.size() != c.graph.inputs().size()) return r.fail();
  if (c.netlist.outputs.size() != c.graph.outputs().size()) return r.fail();
  for (std::size_t i = 0; i < c.netlist.outputs.size(); ++i) {
    if (c.graph.node(c.graph.outputs()[i]).name != c.netlist.outputs[i].name) {
      return r.fail();
    }
  }
  return true;
}

void put_shard_stats(std::vector<unsigned char>& out, const ShardStats& s) {
  put_u64(out, s.shards_total);
  put_u64(out, s.shards_executed);
  put_u64(out, s.shards_requeued);
  put_u64(out, s.shards_journaled);
  put_u64(out, s.shards_resumed);
  put_u64(out, s.workers);
  put_u64(out, s.workers_lost);
  put_u64(out, s.workers_quarantined);
  put_bool(out, s.served_from_cache);
  put_f64(out, s.seconds);
  put_f64(out, s.samples_per_sec);
  put_u64(out, s.per_worker.size());
  for (const WorkerShardStats& w : s.per_worker) {
    put_str(out, w.worker);
    put_i32(out, w.lanes);
    put_u64(out, w.shards);
    put_u64(out, w.samples);
    put_f64(out, w.seconds);
    put_bool(out, w.lost);
  }
}

[[nodiscard]] bool get_shard_stats(Reader& r, ShardStats& s) {
  if (!r.u64(s.shards_total) || !r.u64(s.shards_executed) ||
      !r.u64(s.shards_requeued) || !r.u64(s.shards_journaled) ||
      !r.u64(s.shards_resumed) || !r.u64(s.workers) ||
      !r.u64(s.workers_lost) || !r.u64(s.workers_quarantined) ||
      !r.boolean(s.served_from_cache) || !r.f64(s.seconds) ||
      !r.f64(s.samples_per_sec)) {
    return false;
  }
  std::uint64_t count = 0;
  if (!r.count(count, 8 + 4 + 8 + 8 + 8 + 1)) return false;
  s.per_worker.resize(static_cast<std::size_t>(count));
  for (WorkerShardStats& w : s.per_worker) {
    if (!r.str(w.worker) || !r.i32(w.lanes) || !r.u64(w.shards) ||
        !r.u64(w.samples) || !r.f64(w.seconds) || !r.boolean(w.lost)) {
      return false;
    }
  }
  return true;
}

void put_result(std::vector<unsigned char>& out,
                const hls::NetlistCampaignResult& v) {
  put_u64(out, v.fault_universe_size);
  put_stats(out, v.aggregate);
  put_u64(out, v.per_unit.size());
  for (const hls::UnitCoverage& unit : v.per_unit) {
    put_i32(out, unit.fu_index);
    put_str(out, unit.fu_name);
    put_u64(out, unit.faults);
    put_stats(out, unit.stats);
  }
}

[[nodiscard]] bool get_result(Reader& r, hls::NetlistCampaignResult& v) {
  if (!r.u64(v.fault_universe_size) || !r.stats(v.aggregate)) return false;
  std::uint64_t count = 0;
  if (!r.count(count, 4 + 8 + 8 + 32)) return false;
  v.per_unit.resize(static_cast<std::size_t>(count));
  for (hls::UnitCoverage& unit : v.per_unit) {
    if (!r.i32(unit.fu_index) || !r.str(unit.fu_name) || !r.u64(unit.faults) ||
        !r.stats(unit.stats)) {
      return false;
    }
    if (unit.fu_index < 0) return r.fail();
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame layer.

std::vector<unsigned char> encode_frame(MsgType type,
                                        std::span<const unsigned char> payload) {
  SCK_EXPECTS(payload.size() <= kMaxFramePayload);
  std::vector<unsigned char> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameChecksumBytes);
  put_u64(out, kWireMagic);
  put_u32(out, kWireProtocolVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::optional<Frame> decode_frame(std::span<const unsigned char> bytes) {
  if (bytes.size() < kFrameHeaderBytes + kFrameChecksumBytes) {
    return std::nullopt;
  }
  // Checksum FIRST (store discipline): any flipped or missing byte fails
  // here, before a single field is interpreted.
  Reader tail(bytes.subspan(bytes.size() - kFrameChecksumBytes));
  std::uint64_t want_sum = 0;
  if (!tail.u64(want_sum)) return std::nullopt;
  if (fnv1a(bytes.data(), bytes.size() - kFrameChecksumBytes) != want_sum) {
    return std::nullopt;
  }

  Reader r(bytes);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t type_raw = 0;
  std::uint64_t length = 0;
  if (!r.u64(magic) || !r.u32(version) || !r.u32(type_raw) || !r.u64(length)) {
    return std::nullopt;
  }
  if (magic != kWireMagic) return std::nullopt;
  if (version != kWireProtocolVersion) return std::nullopt;
  if (type_raw < 1 || type_raw > kMaxMsgType) return std::nullopt;
  if (length > kMaxFramePayload) return std::nullopt;
  if (length !=
      bytes.size() - kFrameHeaderBytes - kFrameChecksumBytes) {
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type_raw);
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes,
                       bytes.end() - kFrameChecksumBytes);
  return frame;
}

std::optional<Frame> FrameBuffer::next() {
  if (!error_.empty()) return std::nullopt;
  if (bytes_.size() < kFrameHeaderBytes) return std::nullopt;

  // Validate the fixed header as soon as it is complete: a bad magic,
  // foreign protocol version or oversized length prefix poisons the
  // stream BEFORE any payload is buffered or allocated.
  Reader r(std::span<const unsigned char>(bytes_.data(), kFrameHeaderBytes));
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t type_raw = 0;
  std::uint64_t length = 0;
  if (!r.u64(magic) || !r.u32(version) || !r.u32(type_raw) || !r.u64(length)) {
    error_ = "wire: truncated frame header";
    return std::nullopt;
  }
  if (magic != kWireMagic) {
    error_ = "wire: bad frame magic (desynchronized stream?)";
    return std::nullopt;
  }
  if (version != kWireProtocolVersion) {
    error_ = "wire: protocol version mismatch (got " +
             std::to_string(version) + ", want " +
             std::to_string(kWireProtocolVersion) + ")";
    return std::nullopt;
  }
  if (type_raw < 1 || type_raw > kMaxMsgType) {
    error_ = "wire: unknown message type " + std::to_string(type_raw);
    return std::nullopt;
  }
  if (length > kMaxFramePayload) {
    error_ = "wire: oversized payload length prefix (" +
             std::to_string(length) + " bytes)";
    return std::nullopt;
  }

  const std::size_t total = kFrameHeaderBytes +
                            static_cast<std::size_t>(length) +
                            kFrameChecksumBytes;
  if (bytes_.size() < total) return std::nullopt;  // need more bytes

  const std::optional<Frame> frame =
      decode_frame(std::span<const unsigned char>(bytes_.data(), total));
  if (!frame.has_value()) {
    error_ = "wire: frame checksum mismatch";
    return std::nullopt;
  }
  bytes_.erase(bytes_.begin(),
               bytes_.begin() + static_cast<std::ptrdiff_t>(total));
  return frame;
}

// ---------------------------------------------------------------------------
// Payload codecs. Every decoder requires the payload to be FULLY consumed
// (r.done()): trailing garbage is rejected, not ignored.

std::vector<unsigned char> encode_hello(const HelloPayload& p) {
  std::vector<unsigned char> out;
  put_u32(out, p.protocol);
  put_str(out, p.worker_name);
  put_i32(out, p.native_lanes);
  put_str(out, p.isa);
  put_u64(out, p.feature_flags);
  return out;
}

std::optional<HelloPayload> decode_hello(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  HelloPayload p;
  if (!r.u32(p.protocol) || !r.str(p.worker_name) || !r.i32(p.native_lanes) ||
      !r.str(p.isa) || !r.u64(p.feature_flags) || !r.done()) {
    return std::nullopt;
  }
  return p;
}

std::vector<unsigned char> encode_hello_ack(const HelloAckPayload& p) {
  std::vector<unsigned char> out;
  put_u64(out, p.worker_id);
  return out;
}

std::optional<HelloAckPayload> decode_hello_ack(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  HelloAckPayload p;
  if (!r.u64(p.worker_id) || !r.done()) return std::nullopt;
  return p;
}

std::vector<unsigned char> encode_campaign_setup(
    const CampaignSetupPayload& p) {
  std::vector<unsigned char> out;
  put_u64(out, p.campaign_id);
  put_campaign(out, p.campaign);
  return out;
}

std::optional<CampaignSetupPayload> decode_campaign_setup(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  CampaignSetupPayload p;
  if (!r.u64(p.campaign_id) || !get_campaign(r, p.campaign) || !r.done()) {
    return std::nullopt;
  }
  return p;
}

std::vector<unsigned char> encode_shard_request(const ShardRequestPayload& p) {
  std::vector<unsigned char> out;
  put_u64(out, p.campaign_id);
  put_u64(out, p.shard_id);
  put_u64(out, p.base);
  put_u64(out, p.jobs.size());
  for (const hls::FaultJob& job : p.jobs) {
    put_i32(out, job.fu);
    put_i32(out, job.site.cell);
    put_u32(out, job.site.line);
    put_bool(out, job.site.stuck_value);
    put_u32(out, static_cast<std::uint32_t>(job.kind));
    put_i32(out, job.seu_bit);
  }
  return out;
}

std::optional<ShardRequestPayload> decode_shard_request(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  ShardRequestPayload p;
  std::uint64_t count = 0;
  if (!r.u64(p.campaign_id) || !r.u64(p.shard_id) || !r.u64(p.base) ||
      !r.count(count, 4 + 4 + 4 + 1 + 4 + 4)) {
    return std::nullopt;
  }
  p.jobs.resize(static_cast<std::size_t>(count));
  for (hls::FaultJob& job : p.jobs) {
    std::uint32_t line = 0;
    std::uint32_t kind = 0;
    if (!r.i32(job.fu) || !r.i32(job.site.cell) || !r.u32(line) ||
        !r.boolean(job.site.stuck_value) || !r.u32(kind) ||
        !r.i32(job.seu_bit)) {
      return std::nullopt;
    }
    if (job.fu < 0 || job.site.cell < hw::kNoFault || line > 255) {
      return std::nullopt;
    }
    if (kind > static_cast<std::uint32_t>(hls::FaultKind::kSeu)) {
      return std::nullopt;
    }
    job.kind = static_cast<hls::FaultKind>(kind);
    // kSeu: fu names a register index and seu_bit a bit within kMaxWidth;
    // kStuckAt must keep the sentinel so job equality round-trips.
    if (job.kind == hls::FaultKind::kSeu) {
      if (job.seu_bit < 0 || job.seu_bit >= kMaxWidth) return std::nullopt;
    } else if (job.seu_bit != -1) {
      return std::nullopt;
    }
    job.site.line = static_cast<std::uint8_t>(line);
  }
  if (!r.done()) return std::nullopt;
  return p;
}

std::vector<unsigned char> encode_shard_result(const ShardResultPayload& p) {
  std::vector<unsigned char> out;
  put_u64(out, p.campaign_id);
  put_u64(out, p.shard_id);
  put_u64(out, p.base);
  put_u64(out, p.per_job.size());
  for (const fault::CampaignStats& s : p.per_job) put_stats(out, s);
  put_f64(out, p.seconds);
  return out;
}

std::optional<ShardResultPayload> decode_shard_result(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  ShardResultPayload p;
  std::uint64_t count = 0;
  if (!r.u64(p.campaign_id) || !r.u64(p.shard_id) || !r.u64(p.base) ||
      !r.count(count, 32)) {
    return std::nullopt;
  }
  p.per_job.resize(static_cast<std::size_t>(count));
  for (fault::CampaignStats& s : p.per_job) {
    if (!r.stats(s)) return std::nullopt;
  }
  if (!r.f64(p.seconds) || !r.done()) return std::nullopt;
  return p;
}

std::vector<unsigned char> encode_campaign_response(
    const CampaignResponsePayload& p) {
  std::vector<unsigned char> out;
  put_u64(out, p.campaign_id);
  put_bool(out, p.ok);
  put_str(out, p.error);
  put_result(out, p.result);
  put_shard_stats(out, p.stats);
  return out;
}

std::optional<CampaignResponsePayload> decode_campaign_response(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  CampaignResponsePayload p;
  if (!r.u64(p.campaign_id) || !r.boolean(p.ok) || !r.str(p.error) ||
      !get_result(r, p.result) || !get_shard_stats(r, p.stats) || !r.done()) {
    return std::nullopt;
  }
  return p;
}

std::vector<unsigned char> encode_error(const std::string& msg) {
  std::vector<unsigned char> out;
  put_str(out, msg);
  return out;
}

std::optional<std::string> decode_error(
    std::span<const unsigned char> payload) {
  Reader r(payload);
  std::string msg;
  if (!r.str(msg) || !r.done()) return std::nullopt;
  return msg;
}

}  // namespace sck::service

// Duration-model and sampled-campaign suite for the netlist engine.
//
// Three battlegrounds:
//
//  1. REGRESSION: the permanent-fault campaign must be byte-identical to
//     the pre-duration engine. The pinned aggregates below were captured
//     from the flagship FIR design BEFORE the duration/SEU work landed —
//     a failure here means the refactor changed history, not just added
//     to it.
//  2. SEMANTICS: the duration models must mean what they claim — full
//     intermittent duty collapses to permanent, zero duty to fault-free,
//     transient windows produce golden samples outside the window, SEU
//     jobs extend the universe by exactly the architectural register
//     bits — and all of it deterministically (same options, same bytes).
//  3. SAMPLING: confidence-interval campaigns must stop at a seed-stable
//     block boundary regardless of thread count, report a sane Wilson
//     interval, and reduce to EXACTLY the exhaustive result when the
//     whole universe is evaluated.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codesign/flow.h"
#include "fault/duration.h"
#include "fault/stats.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"
#include "netlist_test_util.h"

namespace sck::hls {
namespace {

// ---- fixtures --------------------------------------------------------------

/// The repository's end-to-end flagship (examples/campaign_daemon.cpp):
/// self-checking FIR, class-based CED, min-area binding — 9232 fault jobs.
struct FlagshipDesign {
  Dfg graph;
  Netlist netlist;

  FlagshipDesign() {
    const FirSpec spec{{3, -5, 7, -5, 3}, 8};
    CedOptions ced_opt;
    ced_opt.style = CedStyle::kClassBased;
    graph = insert_ced(build_fir(spec), ced_opt);
    netlist = codesign::synthesize_fir(spec, codesign::Variant::kSck,
                                       /*min_area=*/true)
                  .netlist;
  }
};

/// Small fixture for the semantic and sampling tests (same recipe as the
/// service suites): fast enough to sweep backends and thread counts.
struct SmallDesign {
  Dfg graph;
  Netlist netlist;

  SmallDesign() {
    graph = ced(build_fir(FirSpec{{1, 2, 3}, 4}), CedStyle::kClassBased);
    netlist = synthesize(graph, ResourceConstraints::min_area(),
                         "duration_fixture");
  }
};

[[nodiscard]] NetlistCampaignOptions incremental_options(int samples,
                                                         std::uint64_t seed) {
  NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = seed;
  opt.stream = StreamMode::kShared;
  opt.backend = NetlistBackend::kIncremental;
  return opt;
}

// ---- 1. permanent-fault byte-identity with the pre-duration engine ---------

TEST(DurationRegression, PermanentSharedIncrementalPinsPreDurationEngine) {
  // Captured from the engine at the previous PR's head: flagship FIR,
  // shared stream, incremental backend, 8 samples, seed 0x2005.
  const FlagshipDesign d;
  const NetlistCampaignResult r = run_netlist_campaign(
      d.graph, d.netlist, incremental_options(/*samples=*/8, 0x2005));
  EXPECT_EQ(r.fault_universe_size, 9232u);
  EXPECT_EQ(r.per_unit.size(), 16u);
  EXPECT_EQ(r.aggregate.silent_correct, 41711u);
  EXPECT_EQ(r.aggregate.detected_correct, 25827u);
  EXPECT_EQ(r.aggregate.detected_erroneous, 6318u);
  EXPECT_EQ(r.aggregate.masked, 0u);
}

TEST(DurationRegression, PermanentPerFaultBatchedPinsPreDurationEngine) {
  // Same design, per-fault streams on the batched backend, 6 samples,
  // seed 0x1234 — the second leg of the pre-duration capture.
  const FlagshipDesign d;
  NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.seed = 0x1234;
  opt.stream = StreamMode::kPerFault;
  opt.backend = NetlistBackend::kBatched;
  const NetlistCampaignResult r = run_netlist_campaign(d.graph, d.netlist, opt);
  EXPECT_EQ(r.fault_universe_size, 9232u);
  EXPECT_EQ(r.aggregate.silent_correct, 31829u);
  EXPECT_EQ(r.aggregate.detected_correct, 19077u);
  EXPECT_EQ(r.aggregate.detected_erroneous, 4486u);
  EXPECT_EQ(r.aggregate.masked, 0u);
}

// ---- 2. duration-model semantics -------------------------------------------

TEST(DurationSemantics, FullDutyIntermittentEqualsPermanent) {
  // duty = 1000‰ arms the fault at every sample — indistinguishable from
  // kPermanent, bit for bit, on every backend.
  const SmallDesign d;
  for (const NetlistBackend backend :
       {NetlistBackend::kScalar, NetlistBackend::kBatched,
        NetlistBackend::kIncremental}) {
    NetlistCampaignOptions opt = incremental_options(/*samples=*/5, 0xD0);
    opt.backend = backend;
    const NetlistCampaignResult permanent =
        run_netlist_campaign(d.graph, d.netlist, opt);
    opt.duration = fault::FaultDuration::kIntermittent;
    opt.duty_permille = 1000;
    const NetlistCampaignResult full_duty =
        run_netlist_campaign(d.graph, d.netlist, opt);
    EXPECT_TRUE(same_campaign_result(permanent, full_duty))
        << "backend " << static_cast<int>(backend);
  }
}

TEST(DurationSemantics, ZeroDutyIntermittentIsFaultFree) {
  // duty = 0‰ never arms the fault: every sample of every job runs golden
  // hardware, so the whole campaign is silent-correct.
  const SmallDesign d;
  NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xD1);
  opt.duration = fault::FaultDuration::kIntermittent;
  opt.duty_permille = 0;
  const NetlistCampaignResult r = run_netlist_campaign(d.graph, d.netlist, opt);
  EXPECT_EQ(r.aggregate.silent_correct,
            r.fault_universe_size * 4u);
  EXPECT_EQ(r.aggregate.detected_correct, 0u);
  EXPECT_EQ(r.aggregate.detected_erroneous, 0u);
  EXPECT_EQ(r.aggregate.masked, 0u);
}

TEST(DurationSemantics, TransientWindowsLieStrictlyInsidePermanentActivity) {
  // A transient fault is a permanent fault masked to a window, so its
  // campaign can only move detections toward silent-correct — and with
  // window length == stream length it must still differ from zero
  // activity. Sanity-bound the monotone direction rather than pinning
  // arbitrary constants.
  const SmallDesign d;
  NetlistCampaignOptions opt = incremental_options(/*samples=*/6, 0xD2);
  const NetlistCampaignResult permanent =
      run_netlist_campaign(d.graph, d.netlist, opt);
  opt.duration = fault::FaultDuration::kTransient;
  opt.transient_samples = 2;
  const NetlistCampaignResult transient =
      run_netlist_campaign(d.graph, d.netlist, opt);
  EXPECT_EQ(transient.fault_universe_size, permanent.fault_universe_size);
  EXPECT_GE(transient.aggregate.silent_correct,
            permanent.aggregate.silent_correct);
  EXPECT_GT(transient.aggregate.detections(), 0u);
  EXPECT_LE(transient.aggregate.detections(),
            permanent.aggregate.detections());
}

TEST(DurationSemantics, DeterministicAcrossRunsAndThreads) {
  const SmallDesign d;
  NetlistCampaignOptions opt = incremental_options(/*samples=*/5, 0xD3);
  opt.duration = fault::FaultDuration::kIntermittent;
  opt.duty_permille = 400;
  opt.seu_faults = true;
  const NetlistCampaignResult anchor =
      run_netlist_campaign(d.graph, d.netlist, opt);
  for (const int threads : {1, 2, 8}) {
    opt.threads = threads;
    EXPECT_TRUE(same_campaign_result(
        anchor, run_netlist_campaign(d.graph, d.netlist, opt)))
        << threads << " threads";
  }
}

TEST(DurationSemantics, SeuJobsExtendTheUniverseByRegisterBits) {
  // options.seu_faults appends one job per (architectural register, bit):
  // the universe grows by exactly sum(reg widths) and each register shows
  // up as its own pseudo-unit in the per-unit breakdown.
  const SmallDesign d;
  NetlistCampaignOptions opt = incremental_options(/*samples=*/5, 0xD4);
  const NetlistCampaignResult base =
      run_netlist_campaign(d.graph, d.netlist, opt);
  opt.seu_faults = true;
  const NetlistCampaignResult with_seu =
      run_netlist_campaign(d.graph, d.netlist, opt);

  std::uint64_t reg_bits = 0;
  for (const RegisterInfo& reg : d.netlist.regs) {
    reg_bits += static_cast<std::uint64_t>(reg.width);
  }
  ASSERT_GT(reg_bits, 0u);
  EXPECT_EQ(with_seu.fault_universe_size,
            base.fault_universe_size + reg_bits);
  EXPECT_EQ(with_seu.per_unit.size(),
            base.per_unit.size() + d.netlist.regs.size());
  // The stuck-at prefix of the reduction is untouched by the SEU suffix.
  for (std::size_t u = 0; u < base.per_unit.size(); ++u) {
    EXPECT_EQ(with_seu.per_unit[u], base.per_unit[u]) << "unit " << u;
  }
  // An SEU is a one-shot state corruption on otherwise golden hardware:
  // nothing is erroneous before the flip, so some strikes must be visible
  // (detected or erroneous) for the dimension to be meaningful.
  std::uint64_t seu_total = 0;
  for (std::size_t u = base.per_unit.size(); u < with_seu.per_unit.size();
       ++u) {
    seu_total += with_seu.per_unit[u].stats.total();
  }
  EXPECT_EQ(seu_total, reg_bits * 5u);
}

// ---- 3. confidence-interval sampled campaigns ------------------------------

TEST(SampledCampaign, FullUniverseEqualsExhaustive) {
  // An unreachable target makes the sampler evaluate every job; the
  // job-index-ordered reduction must then be bit-identical to
  // run_netlist_campaign.
  const SmallDesign d;
  const NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xE0);
  const NetlistCampaignResult exhaustive =
      run_netlist_campaign(d.graph, d.netlist, opt);
  SampledCampaignOptions sampling;
  sampling.target_half_width = 1e-12;
  const SampledNetlistCampaignResult sampled =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
  EXPECT_EQ(sampled.sampled_jobs, sampled.universe_jobs);
  EXPECT_FALSE(sampled.converged);
  EXPECT_TRUE(same_campaign_result(exhaustive, sampled.result));
}

TEST(SampledCampaign, EarlyStopIsDeterministicAcrossThreadsAndBackends) {
  // A loose target stops after a prefix of blocks. The evaluated prefix,
  // the Wilson interval and the reduced result must be byte-identical at
  // every thread count and across backends — threads only parallelize
  // WITHIN a block, the stop decision is sequential by construction.
  const SmallDesign d;
  NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xE1);
  SampledCampaignOptions sampling;
  sampling.block = 128;
  sampling.target_half_width = 0.08;
  const SampledNetlistCampaignResult anchor =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
  EXPECT_TRUE(anchor.converged);
  EXPECT_LT(anchor.sampled_jobs, anchor.universe_jobs);
  EXPECT_EQ(anchor.sampled_jobs % sampling.block, 0u);

  for (const int threads : {2, 8}) {
    opt.threads = threads;
    const SampledNetlistCampaignResult r =
        run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
    EXPECT_EQ(r.sampled_jobs, anchor.sampled_jobs) << threads << " threads";
    EXPECT_EQ(r.detection_coverage.point, anchor.detection_coverage.point);
    EXPECT_EQ(r.detection_coverage.lo, anchor.detection_coverage.lo);
    EXPECT_EQ(r.detection_coverage.hi, anchor.detection_coverage.hi);
    EXPECT_TRUE(same_campaign_result(anchor.result, r.result))
        << threads << " threads";
  }
  opt.threads = 0;
  opt.backend = NetlistBackend::kScalar;
  const SampledNetlistCampaignResult scalar =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
  EXPECT_EQ(scalar.sampled_jobs, anchor.sampled_jobs);
  EXPECT_TRUE(same_campaign_result(anchor.result, scalar.result));
}

TEST(SampledCampaign, WilsonIntervalIsSaneAndCoversTheTruth) {
  const SmallDesign d;
  const NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xE2);
  // Ground truth: fraction of jobs with at least one detection.
  const CampaignSliceRunner runner(d.graph, d.netlist, opt);
  std::vector<fault::CampaignStats> per_job(runner.jobs().size());
  runner.run_slice(0, per_job.size(), per_job);
  std::uint64_t detected = 0;
  for (const fault::CampaignStats& s : per_job) {
    if (s.detections() > 0) ++detected;
  }
  const double truth =
      static_cast<double>(detected) / static_cast<double>(per_job.size());

  SampledCampaignOptions sampling;
  sampling.block = 96;
  sampling.target_half_width = 0.06;
  const SampledNetlistCampaignResult r =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
  ASSERT_TRUE(r.converged);
  const fault::WilsonInterval& ci = r.detection_coverage;
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_LE(ci.point, ci.hi);
  EXPECT_LE(ci.half_width(), sampling.target_half_width);
  // z = 1.96 → the interval should cover the exhaustive truth here (a
  // deterministic fixture, not a probabilistic assertion: these seeds are
  // pinned, so this either always passes or the estimator is wrong).
  EXPECT_GE(truth, ci.lo);
  EXPECT_LE(truth, ci.hi);
}

TEST(SampledCampaign, MaxJobsCapsTheSample) {
  const SmallDesign d;
  const NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xE3);
  SampledCampaignOptions sampling;
  sampling.block = 64;
  sampling.target_half_width = 1e-12;  // never converges on its own
  sampling.max_jobs = 192;
  const SampledNetlistCampaignResult r =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, sampling);
  EXPECT_EQ(r.sampled_jobs, 192u);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.result.fault_universe_size, 192u);
}

TEST(SampledCampaign, SampleSeedSelectsTheSubset) {
  // Different sample seeds evaluate different prefixes of different
  // permutations; the per-campaign stimuli stay fixed, so the reduced
  // totals differ while each remains internally deterministic.
  const SmallDesign d;
  const NetlistCampaignOptions opt = incremental_options(/*samples=*/4, 0xE4);
  SampledCampaignOptions a;
  a.block = 64;
  a.max_jobs = 256;
  a.target_half_width = 1e-12;
  SampledCampaignOptions b = a;
  b.sample_seed = a.sample_seed + 1;
  const SampledNetlistCampaignResult ra =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, a);
  const SampledNetlistCampaignResult rb =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, b);
  const SampledNetlistCampaignResult ra2 =
      run_sampled_netlist_campaign(d.graph, d.netlist, opt, a);
  EXPECT_TRUE(same_campaign_result(ra.result, ra2.result));
  EXPECT_FALSE(same_campaign_result(ra.result, rb.result));
}

}  // namespace
}  // namespace sck::hls

// Verilog-2001 emitter for generated netlists.
//
// Emits one synchronous module per netlist: an FSM steps through the
// schedule, every register assignment is annotated with the functional
// unit the operation was bound to, and same-step error glue is inlined as
// combinational expressions — mirroring NetlistSim's semantics statement
// for statement. A structural summary (units, registers, mux fan-ins) is
// emitted as a header comment.
#pragma once

#include <string>

#include "hls/netlist.h"

namespace sck::hls {

[[nodiscard]] std::string emit_verilog(const Netlist& nl);

}  // namespace sck::hls

// Tests for the fault-injection campaign framework: outcome classification,
// the paper's fault-situation counting formula, coverage invariants across
// techniques, and Monte-Carlo reproducibility.
#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.h"
#include "fault/outcome.h"
#include "fault/trials.h"
#include "hw/ripple_carry_adder.h"

namespace sck::fault {
namespace {

TEST(Outcome, ClassificationTruthTable) {
  EXPECT_EQ(classify(false, true), Outcome::kSilentCorrect);
  EXPECT_EQ(classify(false, false), Outcome::kDetectedCorrect);
  EXPECT_EQ(classify(true, false), Outcome::kDetectedErroneous);
  EXPECT_EQ(classify(true, true), Outcome::kMasked);
}

TEST(CampaignStats, MetricsFollowCounters) {
  CampaignStats s;
  s.record(Outcome::kSilentCorrect);
  s.record(Outcome::kSilentCorrect);
  s.record(Outcome::kDetectedCorrect);
  s.record(Outcome::kDetectedErroneous);
  s.record(Outcome::kMasked);
  EXPECT_EQ(s.total(), 5u);
  EXPECT_EQ(s.observable_errors(), 2u);
  EXPECT_EQ(s.detections(), 2u);
  EXPECT_DOUBLE_EQ(s.coverage(), 1.0 - 1.0 / 5.0);

  CampaignStats t;
  t.record(Outcome::kMasked);
  s += t;
  EXPECT_EQ(s.total(), 6u);
  EXPECT_EQ(s.masked, 2u);
}

TEST(CampaignStats, EmptyStatsReportFullCoverage) {
  const CampaignStats s;
  EXPECT_DOUBLE_EQ(s.coverage(), 1.0);
}

// The paper's formula (Table 2): situations = 32 * n * 2^(2n).
TEST(ExhaustiveCampaign, TrialCountMatchesPaperFormula) {
  for (const int n : {1, 2, 3}) {
    hw::RippleCarryAdder adder(n);
    std::vector<hw::FaultableUnit*> units{&adder};
    const AddTrial<hw::RippleCarryAdder> trial{adder, Technique::kTech1};
    const CampaignResult r = run_exhaustive(units, n, trial);
    const std::uint64_t expected =
        32ull * static_cast<std::uint64_t>(n) * (1ull << (2 * n));
    EXPECT_EQ(r.aggregate.total(), expected) << "n=" << n;
    EXPECT_EQ(r.fault_universe_size, static_cast<std::uint64_t>(32 * n));
  }
}

TEST(ExhaustiveCampaign, CombinedTechniqueDominatesEither) {
  // Masked(Both) is a subset of Masked(T1) and Masked(T2): the combined
  // check fails whenever either component fails.
  for (const int n : {1, 2, 3, 4}) {
    hw::RippleCarryAdder adder(n);
    std::vector<hw::FaultableUnit*> units{&adder};
    const auto run = [&](Technique t) {
      const AddTrial<hw::RippleCarryAdder> trial{adder, t};
      return run_exhaustive(units, n, trial).aggregate;
    };
    const CampaignStats t1 = run(Technique::kTech1);
    const CampaignStats t2 = run(Technique::kTech2);
    const CampaignStats both = run(Technique::kBoth);
    EXPECT_LE(both.masked, t1.masked) << "n=" << n;
    EXPECT_LE(both.masked, t2.masked) << "n=" << n;
    EXPECT_GE(both.coverage(), t1.coverage()) << "n=" << n;
    EXPECT_GE(both.coverage(), t2.coverage()) << "n=" << n;
  }
}

TEST(ExhaustiveCampaign, FaultFreeTrialNeverFlagsResidue) {
  // Fault-free runs of every technique must be silent (no false alarms) —
  // including the residue check's wrap correction.
  for (const int n : {3, 4, 5}) {
    hw::RippleCarryAdder adder(n);
    for (const Technique t : {Technique::kTech1, Technique::kTech2,
                              Technique::kBoth, Technique::kResidue3}) {
      const AddTrial<hw::RippleCarryAdder> add_trial{adder, t};
      const SubTrial<hw::RippleCarryAdder> sub_trial{adder, t};
      const Word limit = Word{1} << n;
      for (Word a = 0; a < limit; ++a) {
        for (Word b = 0; b < limit; ++b) {
          ASSERT_EQ(add_trial(a, b), Outcome::kSilentCorrect)
              << "t=" << to_string(t) << " a=" << a << " b=" << b;
          ASSERT_EQ(sub_trial(a, b), Outcome::kSilentCorrect)
              << "t=" << to_string(t) << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(ExhaustiveCampaign, PerFaultBreakdownSumsToAggregate) {
  const int n = 3;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> trial{adder, Technique::kTech1};
  CampaignOptions opt;
  opt.keep_per_fault = true;
  const CampaignResult r = run_exhaustive(units, n, trial, opt);
  EXPECT_EQ(r.per_fault.size(), r.fault_universe_size);
  CampaignStats sum;
  for (const auto& pf : r.per_fault) sum += pf.stats;
  EXPECT_EQ(sum.total(), r.aggregate.total());
  EXPECT_EQ(sum.masked, r.aggregate.masked);
  EXPECT_EQ(sum.detected_correct, r.aggregate.detected_correct);
}

TEST(ExhaustiveCampaign, CoverageRangeBracketsAggregate) {
  const int n = 4;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> trial{adder, Technique::kTech1};
  const CampaignResult r = run_exhaustive(units, n, trial);
  ASSERT_TRUE(r.has_observable_fault);
  EXPECT_LE(r.min_fault_coverage, r.aggregate.coverage());
  EXPECT_LE(r.min_fault_coverage, r.max_fault_coverage);
  EXPECT_LE(r.max_fault_coverage, 1.0);
}

TEST(SampledCampaign, SeededRunsAreReproducible) {
  const int n = 8;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> trial{adder, Technique::kTech1};
  const CampaignResult r1 = run_sampled(units, n, trial, 20000, 42);
  const CampaignResult r2 = run_sampled(units, n, trial, 20000, 42);
  EXPECT_EQ(r1.aggregate.masked, r2.aggregate.masked);
  EXPECT_EQ(r1.aggregate.silent_correct, r2.aggregate.silent_correct);
  EXPECT_EQ(r1.aggregate.total(), 20000u);

  const CampaignResult r3 = run_sampled(units, n, trial, 20000, 43);
  EXPECT_NE(r1.aggregate.silent_correct, r3.aggregate.silent_correct);
}

TEST(SampledCampaign, ConvergesTowardExhaustiveCoverage) {
  const int n = 4;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> trial{adder, Technique::kTech1};
  const double exact = run_exhaustive(units, n, trial).aggregate.coverage();
  const double sampled =
      run_sampled(units, n, trial, 400000, 7).aggregate.coverage();
  EXPECT_NEAR(sampled, exact, 0.003);
}

TEST(SampledCampaign, SkipBZeroExcludesZeroDivisor) {
  const int n = 4;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  // A trial that asserts b != 0 would die if the option were broken.
  struct Probe {
    Outcome operator()(Word, Word b) const {
      EXPECT_NE(b, Word{0});
      return Outcome::kSilentCorrect;
    }
  };
  CampaignOptions opt;
  opt.skip_b_zero = true;
  (void)run_sampled(units, n, Probe{}, 5000, 11, opt);
}

TEST(SampledCampaign, MultiUnitUniverseIsUnion) {
  const int n = 4;
  hw::RippleCarryAdder a1(n);
  hw::RippleCarryAdder a2(n);
  std::vector<hw::FaultableUnit*> units{&a1, &a2};
  struct Probe {
    Outcome operator()(Word, Word) const { return Outcome::kSilentCorrect; }
  };
  const CampaignResult r = run_sampled(units, n, Probe{}, 100, 1);
  EXPECT_EQ(r.fault_universe_size, static_cast<std::uint64_t>(2 * 32 * n));
}

}  // namespace
}  // namespace sck::fault

// The reliable co-design flow of the paper's Fig. 3 for the FIR case
// study — now a thin wrapper over the kernel-generic exploration pipeline
// (codesign/kernel.h + codesign/explorer.h). The entry points and their
// reports are bit-identical to the pre-refactor FIR-only flow
// (tests/test_explorer.cpp holds them against an inline replica of the
// legacy synthesis path); new workloads should register a KernelSpec and
// drive the Explorer directly instead of forking these wrappers.
//
// The flow evaluates the same three FIR variants Table 3 compares:
//
//   kPlain     the unprotected specification,
//   kSck       SCK<int> data types (class-based CED, transparent but
//              expensive in hardware),
//   kEmbedded  hand-embedded accumulation checks.
#pragma once

#include <string>
#include <vector>

#include "codesign/explorer.h"
#include "codesign/kernel.h"
#include "codesign/variant.h"
#include "fault/stats.h"
#include "hls/area_time.h"
#include "hls/builder.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"

namespace sck::codesign {

/// Hardware leg: synthesize one FIR variant under one objective.
struct HwDesign {
  Variant variant = Variant::kPlain;
  bool min_area = true;
  hls::Netlist netlist;
  hls::HwReport report;
};

[[nodiscard]] HwDesign synthesize_fir(const hls::FirSpec& spec,
                                      Variant variant, bool min_area);

/// The full Fig. 3 flow: all six hardware designs plus the three software
/// measurements for one FIR specification. (SwReport and measure_fir_sw
/// live in codesign/kernel.h — the SW leg is kernel-generic now.)
struct FlowReport {
  std::vector<HwDesign> hardware;  // 3 variants x {min-area, min-latency}
  std::vector<SwReport> software;  // 3 variants
  /// The FIR flow wrapper is pinned to the pre-bump (PR 3/4) coverage
  /// semantics: evaluate_flow_coverage runs the caller's campaign options
  /// verbatim, so FlowReport/CoverageReport stay byte-identical to every
  /// legacy report (tests/test_explorer.cpp holds this). Drive the
  /// Explorer directly for report_version 2 coverage.
  int report_version = kLegacyReportVersion;
};

[[nodiscard]] FlowReport run_fir_flow(const hls::FirSpec& spec,
                                      std::size_t sw_samples);

/// Reliability leg of the design-space exploration: the realization-level
/// fault coverage of one synthesized design, measured by sweeping its
/// complete FU stuck-at universe through the system-level campaign engine
/// (hls/netlist_campaign.h — by default the 64-lane bit-plane netlist
/// backend, 64 faults per sweep, multithreaded; bit-identical to the
/// scalar interpreter at any lane packing and thread count).
struct CoverageReport {
  Variant variant = Variant::kPlain;
  bool min_area = true;
  fault::CampaignStats stats;
  std::uint64_t faults = 0;

  [[nodiscard]] double coverage() const { return stats.coverage(); }
};

/// Evaluate every design of `flow` (same spec that produced it). This is
/// the third DSE axis next to area/latency and software overhead: which
/// variant buys how much realization-level coverage for its cost.
[[nodiscard]] std::vector<CoverageReport> evaluate_flow_coverage(
    const hls::FirSpec& spec, const FlowReport& flow,
    const hls::NetlistCampaignOptions& options);

}  // namespace sck::codesign

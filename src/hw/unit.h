// Base class for word-level functional units with a single injectable fault.
//
// Concrete units (adders, multiplier, divider) derive from FaultableUnit and
// interpret the FaultSite's unit-local cell index. The base class keeps the
// fault plumbing uniform so the campaign framework (src/fault) can drive any
// unit generically.
#pragma once

#include <vector>

#include "common/word.h"
#include "hw/batch.h"
#include "hw/cell.h"
#include "hw/fault_site.h"

namespace sck::hw {

/// Records which truth-table rows each cell of a unit actually sees during
/// simulation. Used for fault collapsing: a fault on a row a cell never
/// receives (e.g. the contradictory g=p=1 rows of a lookahead carry cell,
/// or carry-in=1 on the first adder of a chain) is provably silent.
class CellUsageRecorder {
 public:
  explicit CellUsageRecorder(int cell_count)
      : seen_(static_cast<std::size_t>(cell_count), 0u) {}

  void note(int cell, unsigned row) {
    seen_[static_cast<std::size_t>(cell)] |= 1u << row;
  }

  [[nodiscard]] bool seen(int cell, unsigned row) const {
    return (seen_[static_cast<std::size_t>(cell)] >> row) & 1u;
  }

 private:
  std::vector<unsigned> seen_;
};

/// A functional unit that can host at most one cell fault (the paper's
/// single-functional-unit-failure model).
class FaultableUnit {
 public:
  explicit FaultableUnit(int width) : width_(width) {
    SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  }
  virtual ~FaultableUnit() = default;

  FaultableUnit(const FaultableUnit&) = default;
  FaultableUnit& operator=(const FaultableUnit&) = default;

  /// Operand width in bits.
  [[nodiscard]] int width() const { return width_; }

  /// Number of addressable cells inside the unit.
  [[nodiscard]] virtual int cell_count() const = 0;

  /// Kind of cell at unit-local index `cell`.
  [[nodiscard]] virtual CellKind cell_kind(int cell) const = 0;

  /// Every fault the unit can host (the campaign denominator).
  [[nodiscard]] std::vector<FaultSite> fault_universe() const {
    std::vector<FaultSite> out;
    for (int c = 0; c < cell_count(); ++c) {
      const CellKind kind = cell_kind(c);
      auto faults = enumerate_cell_faults(kind, c, 1);
      out.insert(out.end(), faults.begin(), faults.end());
    }
    return out;
  }

  /// Inject `f` (replacing any previous fault). `FaultSite{}` restores the
  /// fault-free unit.
  void set_fault(const FaultSite& f) {
    if (f.active()) {
      SCK_EXPECTS(f.cell >= 0 && f.cell < cell_count());
      const CellKind kind = cell_kind(f.cell);
      SCK_EXPECTS(f.line < cell_line_count(kind));
      faulty_lut_ = faulty_cell_lut(kind, f.line, f.stuck_value);
      faulty_batch_ = CellBatch::compile(faulty_lut_);
    }
    fault_ = f;
  }

  void clear_fault() { fault_ = FaultSite{}; }

  [[nodiscard]] const FaultSite& fault() const { return fault_; }

  /// Install (or remove, with nullptr) a usage recorder. Not owned. The
  /// recorder must outlive its installation and must be sized to
  /// cell_count(). Intended for fault-collapsing analyses and tests; the
  /// hot campaign loops run without one.
  void set_recorder(CellUsageRecorder* recorder) { recorder_ = recorder; }

  /// Install (or remove, with nullptr) a per-lane fault table for the
  /// *_batch cell helpers: lane L of every batch evaluation then sees the
  /// faults the table assigns to lane L (lane = fault, the batched netlist
  /// backend's packing). Not owned; must outlive its installation and must
  /// be sized with this unit's cell_count(). Orthogonal to set_fault — the
  /// single broadcast fault takes precedence on its cell, so backends use
  /// one mechanism or the other, not both.
  void set_lane_faults(const LaneFaultSet* lane_faults) {
    lane_faults_ = lane_faults;
  }

  /// True when the fault can change this unit's behaviour at all: the
  /// faulty truth table must differ from the golden one in some row
  /// (redundant stuck-at faults — e.g. an OR input stuck at 0 on a line
  /// that is 0 whenever the other is 0 — are unexcitable).
  [[nodiscard]] bool fault_excitable(const FaultSite& f) const {
    SCK_EXPECTS(f.cell >= 0 && f.cell < cell_count());
    const CellKind kind = cell_kind(f.cell);
    return faulty_cell_lut(kind, f.line, f.stuck_value) != golden_lut(kind);
  }

 protected:
  /// Evaluate the cell at unit-local index `cell` of kind `kind` on packed
  /// inputs `row`, honouring the injected fault. Hot path: predictable
  /// branches against the (usually unique) faulty cell index and the
  /// (usually absent) recorder.
  [[nodiscard]] unsigned eval_cell(int cell, const CellLut& golden,
                                   unsigned row) const {
    if (recorder_ != nullptr) recorder_->note(cell, row);
    if (cell == fault_.cell) return faulty_lut_[row];
    return golden[row];
  }

  // ---- 64-lane bit-parallel cell evaluation (see hw/batch.h) --------------
  //
  // Same contract as eval_cell, but over lane planes: each helper advances
  // 64 independent trials with the hand-compiled golden expression, routing
  // the unit's single faulty cell through the compiled CellBatch instead.
  // The batch path does not feed CellUsageRecorder — usage recording is a
  // scalar-path analysis (the hot campaign loops run without one).

  /// Two output planes of a dual-output cell (full adder, PG).
  struct LaneDuo {
    LaneMask out0 = 0;
    LaneMask out1 = 0;
  };

  [[nodiscard]] LaneDuo fa_batch(int cell, LaneMask a, LaneMask b,
                                 LaneMask c) const {
    if (cell == fault_.cell) [[unlikely]] {
      return {CellBatch::eval3(faulty_batch_.tt[0], a, b, c),
              CellBatch::eval3(faulty_batch_.tt[1], a, b, c)};
    }
    const LaneMask x = a ^ b;
    LaneDuo out{x ^ c, (a & b) | (x & c)};
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, a, b, c, out);
    }
    return out;
  }

  [[nodiscard]] LaneMask and_batch(int cell, LaneMask a, LaneMask b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    LaneMask out = a & b;
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  [[nodiscard]] LaneMask xor_batch(int cell, LaneMask a, LaneMask b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    LaneMask out = a ^ b;
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  [[nodiscard]] LaneMask or_batch(int cell, LaneMask a, LaneMask b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    LaneMask out = a | b;
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  [[nodiscard]] LaneDuo pg_batch(int cell, LaneMask a, LaneMask b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return {CellBatch::eval2(faulty_batch_.tt[0], a, b),
              CellBatch::eval2(faulty_batch_.tt[1], a, b)};
    }
    LaneDuo out{a ^ b, a & b};
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      for (const LaneFaultSet::Entry& e : lane_faults_->entries()) {
        if (e.cell != cell) continue;
        out.out0 = (out.out0 & ~e.lanes) |
                   (CellBatch::eval2(e.batch.tt[0], a, b) & e.lanes);
        out.out1 = (out.out1 & ~e.lanes) |
                   (CellBatch::eval2(e.batch.tt[1], a, b) & e.lanes);
      }
    }
    return out;
  }

  [[nodiscard]] LaneMask carry_batch(int cell, LaneMask g, LaneMask p,
                                     LaneMask c) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval3(faulty_batch_.tt[0], g, p, c);
    }
    LaneMask out = g | (p & c);
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, g, p, c, LaneDuo{out, 0}).out0;
    }
    return out;
  }

  [[nodiscard]] LaneMask mux_batch(int cell, LaneMask d0, LaneMask d1,
                                   LaneMask sel) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval3(faulty_batch_.tt[0], d0, d1, sel);
    }
    LaneMask out = (d0 & ~sel) | (d1 & sel);
    if (lane_faults_ != nullptr && lane_faults_->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, d0, d1, sel, LaneDuo{out, 0}).out0;
    }
    return out;
  }

 private:
  /// Replace the golden outputs of a 3-input cell on every lane the table
  /// corrupts (at most 64 entries per batch; the scan is off the hot path).
  [[nodiscard]] LaneDuo blend_lane_faults3(int cell, LaneMask a, LaneMask b,
                                           LaneMask c, LaneDuo golden) const {
    for (const LaneFaultSet::Entry& e : lane_faults_->entries()) {
      if (e.cell != cell) continue;
      golden.out0 = (golden.out0 & ~e.lanes) |
                    (CellBatch::eval3(e.batch.tt[0], a, b, c) & e.lanes);
      golden.out1 = (golden.out1 & ~e.lanes) |
                    (CellBatch::eval3(e.batch.tt[1], a, b, c) & e.lanes);
    }
    return golden;
  }

  /// Single-output 2-input twin of blend_lane_faults3.
  [[nodiscard]] LaneMask blend_lane_faults2(int cell, LaneMask a, LaneMask b,
                                            LaneMask golden) const {
    for (const LaneFaultSet::Entry& e : lane_faults_->entries()) {
      if (e.cell != cell) continue;
      golden = (golden & ~e.lanes) |
               (CellBatch::eval2(e.batch.tt[0], a, b) & e.lanes);
    }
    return golden;
  }

  int width_;
  FaultSite fault_{};
  CellLut faulty_lut_{};
  CellBatch faulty_batch_{};
  CellUsageRecorder* recorder_ = nullptr;
  const LaneFaultSet* lane_faults_ = nullptr;
};

}  // namespace sck::hw

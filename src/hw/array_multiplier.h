// Array multiplier unit (low-word n x n product).
//
// Structure: partial-product AND gates feed rows of ripple full adders that
// accumulate into the low n bits of the product (C/SystemC `int` semantics:
// the result lives in the same width ring as the operands). Only the cells
// that influence the low word are instantiated, so every fault in the
// universe is at least potentially observable at the output.
//
// Cell indexing:
//   AND cells first, row-major: for multiplier bit (row) i in [0, n),
//   cells for multiplicand bits j in [0, n-i) — total n(n+1)/2.
//   Then full-adder cells: for row i in [1, n), a chain of (n-i) adders
//   accumulating pp_i into product bits [i, n) — total n(n-1)/2.
#pragma once

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit x n-bit -> n-bit (low word) array multiplier with a cell fault.
class ArrayMultiplier : public FaultableUnit {
 public:
  explicit ArrayMultiplier(int width) : FaultableUnit(width) {
    const int n = width;
    and_cells_ = n * (n + 1) / 2;
    fa_cells_ = n * (n - 1) / 2;
  }

  [[nodiscard]] int cell_count() const override { return and_cells_ + fa_cells_; }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < cell_count());
    return cell < and_cells_ ? CellKind::kAnd : CellKind::kFullAdder;
  }

  /// a * b in the n-bit ring, evaluated cell by cell.
  [[nodiscard]] Word mul(Word a, Word b) const {
    const int n = width();
    // Row 0 initialises the accumulator with pp_0 (no adders needed).
    Word acc = 0;
    int and_index = 0;
    for (int j = 0; j < n; ++j) {
      const unsigned row = bit(a, j) | (bit(b, 0) << 1);
      acc |= static_cast<Word>(eval_cell(and_index++, kAndLut, row) & 1u) << j;
    }
    int fa_index = and_cells_;
    for (int i = 1; i < n; ++i) {
      // Partial product of row i: bits j in [0, n-i), aligned at i+j.
      unsigned carry = 0;
      for (int j = 0; j < n - i; ++j) {
        const unsigned and_row = bit(a, j) | (bit(b, i) << 1);
        const unsigned pp = eval_cell(and_index++, kAndLut, and_row) & 1u;
        const int pos = i + j;
        const unsigned fa_row = bit(acc, pos) | (pp << 1) | (carry << 2);
        const unsigned out = eval_cell(fa_index++, kFullAdderLut, fa_row);
        acc = (acc & ~(Word{1} << pos)) | (static_cast<Word>(out & 1u) << pos);
        carry = (out >> 1) & 1u;
      }
      // Carry out of the top position falls outside the low word.
    }
    return trunc(acc, n);
  }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  [[nodiscard]] BatchWordT<P> mul_batch(const BatchWordT<P>& a,
                                        const BatchWordT<P>& b) const {
    const int n = width();
    BatchWordT<P> acc;
    int and_index = 0;
    for (int j = 0; j < n; ++j) {
      acc[j] = and_batch(and_index++, a[j], b[0]);
    }
    int fa_index = and_cells_;
    for (int i = 1; i < n; ++i) {
      P carry{};
      for (int j = 0; j < n - i; ++j) {
        const P pp = and_batch(and_index++, a[j], b[i]);
        const int pos = i + j;
        const LaneDuoT<P> out = fa_batch(fa_index++, acc[pos], pp, carry);
        acc[pos] = out.out0;
        carry = out.out1;
      }
    }
    return acc;
  }

 private:
  int and_cells_ = 0;
  int fa_cells_ = 0;
};

}  // namespace sck::hw

#include "core/ops_hw.h"

namespace sck {

thread_local AluPool* ScopedAluPool::current_ = nullptr;

}  // namespace sck

// Outcome classification for one fault-injection trial.
//
// §4 of the paper partitions the behaviour of a checked operation executed
// on a (possibly) faulty unit into:
//   - the result is correct and the check passes            (silent correct)
//   - the result is correct but the check fires             (detected correct)
//     — the paper highlights this class: unlike classical self-checking
//     logic, the method can flag a latent fault even when the visible
//     output happens to be right, shrinking the window for a second fault;
//   - the result is wrong and the check fires               (detected erroneous)
//   - the result is wrong and the check passes              (masked — §4's
//     case 2b, the only class that hurts fault coverage).
#pragma once

#include <string_view>

#include "common/assert.h"

namespace sck::fault {

/// Four-way classification of a single (fault, input) trial.
enum class Outcome : unsigned char {
  kSilentCorrect,
  kDetectedCorrect,
  kDetectedErroneous,
  kMasked,
};

/// Classify from the two observable facts of a trial.
[[nodiscard]] constexpr Outcome classify(bool result_erroneous,
                                         bool check_passed) {
  if (result_erroneous) {
    return check_passed ? Outcome::kMasked : Outcome::kDetectedErroneous;
  }
  return check_passed ? Outcome::kSilentCorrect : Outcome::kDetectedCorrect;
}

[[nodiscard]] constexpr std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kSilentCorrect:
      return "silent-correct";
    case Outcome::kDetectedCorrect:
      return "detected-correct";
    case Outcome::kDetectedErroneous:
      return "detected-erroneous";
    case Outcome::kMasked:
      return "masked";
  }
  SCK_UNREACHABLE();
}

}  // namespace sck::fault

// Fault-duration models: permanent, transient and intermittent faults.
//
// §2 of the paper: "Both permanent and transient and intermittent faults
// are covered by our approach, the latter increasingly likely to occur in
// any integrated device". The base trials of fault/trials.h model the
// permanent case (the fault persists through the nominal operation and its
// hidden control — the §4 worst case). The wrappers here re-run the same
// checked operations while toggling the injected fault per operation phase:
//
//   kTransient    the fault is active during the nominal operation only
//                 (a particle strike that has decayed by the time the
//                 control executes). Any observable error is then caught —
//                 coverage is exactly 100%, the same mechanism as the
//                 distinct-unit allocation;
//   kIntermittent the fault is active during any given operation with a
//                 duty probability (a marginal contact, a noisy supply).
//                 Masking needs the fault active during the nominal *and*
//                 compensating during the check, so coverage interpolates
//                 between the transient and permanent extremes.
//
// The wrappers restore the campaign's injected fault before returning, so
// they compose with run_exhaustive / run_sampled unchanged.
#pragma once

#include "common/assert.h"
#include "common/rng.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "fault/technique.h"
#include "hw/comparator.h"
#include "hw/fault_site.h"

namespace sck::fault {

/// How long the injected fault stays active.
enum class FaultDuration : unsigned char {
  kPermanent,
  kTransient,
  kIntermittent,
};

[[nodiscard]] constexpr std::string_view to_string(FaultDuration d) {
  switch (d) {
    case FaultDuration::kPermanent:
      return "permanent";
    case FaultDuration::kTransient:
      return "transient";
    case FaultDuration::kIntermittent:
      return "intermittent";
  }
  SCK_UNREACHABLE();
}

/// Per-trial fault toggling for one unit. Captures the campaign-injected
/// fault on construction and restores it on destruction; phase() arms or
/// disarms the fault for the next operation according to the duration
/// model.
template <typename Unit>
class FaultWindow {
 public:
  FaultWindow(Unit& unit, FaultDuration duration, Xoshiro256* rng,
              std::uint32_t duty_permille)
      : unit_(unit),
        injected_(unit.fault()),
        duration_(duration),
        rng_(rng),
        duty_permille_(duty_permille) {}

  ~FaultWindow() { unit_.set_fault(injected_); }

  FaultWindow(const FaultWindow&) = delete;
  FaultWindow& operator=(const FaultWindow&) = delete;

  /// Arm/disarm before an operation. `nominal` marks the nominal phase.
  void phase(bool nominal) {
    bool active = false;
    switch (duration_) {
      case FaultDuration::kPermanent:
        active = true;
        break;
      case FaultDuration::kTransient:
        active = nominal;
        break;
      case FaultDuration::kIntermittent:
        active = rng_ != nullptr && rng_->bounded(1000) < duty_permille_;
        break;
    }
    if (active) {
      unit_.set_fault(injected_);
    } else {
      unit_.clear_fault();
    }
  }

 private:
  Unit& unit_;
  hw::FaultSite injected_;
  FaultDuration duration_;
  Xoshiro256* rng_;
  std::uint32_t duty_permille_;
};

/// Checked addition under a fault-duration model (Tech1/Tech2/Both only;
/// the residue path needs the carry phase-coupled and is covered by the
/// base trial for the permanent case).
template <typename Adder>
struct DurationAddTrial {
  Adder& adder;  // toggled per phase; campaign injects the fault
  Technique tech = Technique::kTech1;
  FaultDuration duration = FaultDuration::kTransient;
  Xoshiro256* rng = nullptr;        // required for kIntermittent
  std::uint32_t duty_permille = 500;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    const Word golden = sck::add(a, b, n);
    FaultWindow<Adder> window(adder, duration, rng, duty_permille);

    window.phase(/*nominal=*/true);
    const Word ris = adder.add(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.sub(ris, a), b, n);
    }
    if (uses_tech2(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.sub(ris, b), a, n);
    }
    return classify(ris != golden, ok);
  }
};

/// Checked subtraction under a fault-duration model.
template <typename Adder>
struct DurationSubTrial {
  Adder& adder;
  Technique tech = Technique::kTech1;
  FaultDuration duration = FaultDuration::kTransient;
  Xoshiro256* rng = nullptr;
  std::uint32_t duty_permille = 500;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    const Word golden = sck::sub(a, b, n);
    FaultWindow<Adder> window(adder, duration, rng, duty_permille);

    window.phase(true);
    const Word ris = adder.sub(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      window.phase(false);
      ok = ok && hw::equal(adder.add(ris, b), a, n);
    }
    if (uses_tech2(tech)) {
      window.phase(false);
      const Word risp = adder.sub(b, a);
      window.phase(false);
      ok = ok && hw::is_zero(adder.add(ris, risp), n);
    }
    return classify(ris != golden, ok);
  }
};

}  // namespace sck::fault

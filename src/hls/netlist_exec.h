// Compile-once execution plan for generated netlists, plus the two
// lane-for-lane-identical execution backends that run it.
//
// compile_execution_plan lowers the FSM microcode of a Netlist into a flat
// plan: operands resolved to dense slots (register / input / wire /
// constant-pool index), constants pre-truncated, step boundaries and
// end-of-iteration state loads laid out as plain arrays. The "wire written
// before read, in the same step" invariant the interpreter used to check
// per read with a stamp table is validated once at compile time, so the
// execution loops index flat vectors with no hashing, no stamps and no
// allocation.
//
// Backend interface: ONE templated executor (run_plan_sample) drives any
// semantics type providing
//   using Value = ...;                 // Word or hw::BatchWord
//   ExecState<Value> state;           // slot storage
//   Value eval(const ExecOp&, const Value& a, const Value& b);
// Two semantics are provided:
//   ScalarExecSemantics  Word values through the units' scalar models —
//                        the NetlistSim path (hls/netlist_sim.h);
//   BatchExecSemantics   64-lane BatchWord planes through the units'
//                        *_batch models, where lane L simulates its own
//                        injected fault — the NetlistBatchSim path below.
// One executor, two value domains: the backends cannot drift apart, and
// the differential tests (tests/test_netlist_batch.cpp) prove lane
// exactness across the full FU fault universe.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/word.h"
#include "hls/netlist.h"
#include "hw/array_multiplier.h"
#include "hw/batch.h"
#include "hw/comparator.h"
#include "hw/fault_site.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck::hls {

/// A resolved operand: slot index into the backend's value tables. kConst
/// operands index the plan's constant pool (literals pre-truncated to the
/// data width at compile time).
struct ExecOperand {
  Operand::Kind kind = Operand::Kind::kNone;
  std::int32_t index = -1;
};

/// One row of the compiled op stream: `op` executes on FU slot `fu` (< 0
/// for combinational glue) at `width`, writes wire slot `wire`, and — when
/// dst_reg >= 0 — latches into that register at the end of its step.
struct ExecOp {
  Op op = Op::kAdd;
  std::int32_t fu = -1;
  std::int32_t wire = -1;
  std::int32_t dst_reg = -1;
  std::int32_t width = 0;
  ExecOperand src0;
  ExecOperand src1;
};

/// The flat, preallocated execution plan shared by all backends. Compiled
/// once per netlist; immutable afterwards.
struct ExecPlan {
  const Netlist* netlist = nullptr;
  int data_width = 0;
  int num_steps = 0;
  std::int32_t num_regs = 0;
  std::int32_t num_inputs = 0;
  std::int32_t num_wires = 0;
  std::vector<Word> const_pool;          ///< distinct pre-truncated literals
  std::vector<ExecOp> ops;               ///< step-major, dataflow order
  std::vector<std::uint32_t> step_begin; ///< ops[step_begin[s]..step_begin[s+1])
  std::vector<ExecOperand> outputs;      ///< by netlist().outputs order
  struct StateLoad {
    std::int32_t dst_reg = -1;
    ExecOperand source;
  };
  std::vector<StateLoad> state_loads;
  std::int32_t error_output = -1;  ///< outputs index of "error", -1 if none
};

/// Lower the microcode into an ExecPlan. Validates the same-step
/// wire-before-read discipline and resolves every slot; aborts on a
/// malformed netlist.
[[nodiscard]] ExecPlan compile_execution_plan(const Netlist& netlist);

/// The functional-unit models of one backend instance, index-aligned with
/// netlist.fus (checker-side classes carry no model). Owns the per-FU
/// fault state: scalar backends inject broadcast faults with set_fault,
/// the batched backend installs per-lane fault tables.
class FuBank {
 public:
  explicit FuBank(const Netlist& netlist);

  // Unit models are stateful (set_fault); a bank is pinned to its backend.
  FuBank(const FuBank&) = delete;
  FuBank& operator=(const FuBank&) = delete;

  /// Inject a cell fault into one FU instance (or clear it with an
  /// inactive FaultSite). Checker-side units accept no faults.
  void set_fault(int fu_index, const hw::FaultSite& fault);

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fault_universe(int fu_index) const;

  /// Generic unit access (nullptr for checker-side classes).
  [[nodiscard]] hw::FaultableUnit* unit(int fu_index) const;

  [[nodiscard]] const hw::RippleCarryAdder& addsub(std::int32_t fu) const {
    return *addsub_[static_cast<std::size_t>(fu)];
  }
  [[nodiscard]] const hw::ArrayMultiplier& mul(std::int32_t fu) const {
    return *mul_[static_cast<std::size_t>(fu)];
  }
  [[nodiscard]] const hw::RestoringDivider& div(std::int32_t fu) const {
    return *div_[static_cast<std::size_t>(fu)];
  }

  [[nodiscard]] std::size_t size() const { return addsub_.size(); }

 private:
  std::vector<std::unique_ptr<hw::RippleCarryAdder>> addsub_;
  std::vector<std::unique_ptr<hw::ArrayMultiplier>> mul_;
  std::vector<std::unique_ptr<hw::RestoringDivider>> div_;
};

/// Slot storage of one backend instance: registers, latched inputs, wires
/// and the materialized constant pool, all preallocated to the plan's slot
/// counts. V is Word (scalar) or hw::BatchWord (64-lane planes).
template <typename V>
struct ExecState {
  std::vector<V> regs;
  std::vector<V> inputs;
  std::vector<V> wires;
  std::vector<V> consts;
  std::vector<std::pair<std::int32_t, V>> latches;
  std::vector<std::pair<std::int32_t, V>> loads;
  V zero{};

  void init(const ExecPlan& plan) {
    regs.assign(static_cast<std::size_t>(plan.num_regs), V{});
    inputs.assign(static_cast<std::size_t>(plan.num_inputs), V{});
    wires.assign(static_cast<std::size_t>(plan.num_wires), V{});
    consts.resize(plan.const_pool.size());
    latches.reserve(regs.size());
    loads.reserve(plan.state_loads.size());
  }

  void reset() {
    for (V& r : regs) r = V{};
  }

  [[nodiscard]] const V& read(const ExecOperand& op) const {
    switch (op.kind) {
      case Operand::Kind::kNone:
        return zero;
      case Operand::Kind::kReg:
        return regs[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kConst:
        return consts[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kInput:
        return inputs[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kWire:
        return wires[static_cast<std::size_t>(op.index)];
    }
    return zero;
  }
};

/// Run one sample iteration of `plan` under `sem`, writing outputs by
/// position in plan.outputs. The step structure is exactly the
/// interpreter's: FU results latch at the end of their step, same-step
/// glue reads wires, outputs are sampled before the parallel
/// end-of-iteration state load. Inputs must already be in sem.state.inputs.
template <typename Sem>
void run_plan_sample(const ExecPlan& plan, Sem& sem,
                     std::span<typename Sem::Value> outputs) {
  auto& st = sem.state;
  for (int step = 0; step < plan.num_steps; ++step) {
    st.latches.clear();
    const std::uint32_t end =
        plan.step_begin[static_cast<std::size_t>(step) + 1];
    for (std::uint32_t i = plan.step_begin[static_cast<std::size_t>(step)];
         i < end; ++i) {
      const ExecOp& op = plan.ops[i];
      const auto& a = st.read(op.src0);
      const auto& b = st.read(op.src1);
      auto result = sem.eval(op, a, b);
      if (op.dst_reg >= 0) st.latches.emplace_back(op.dst_reg, result);
      st.wires[static_cast<std::size_t>(op.wire)] = std::move(result);
    }
    // Register writes commit at the end of the step.
    for (const auto& [reg, value] : st.latches) {
      st.regs[static_cast<std::size_t>(reg)] = value;
    }
  }

  // Outputs are sampled before the state registers advance.
  SCK_EXPECTS(outputs.size() == plan.outputs.size());
  for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
    outputs[i] = st.read(plan.outputs[i]);
  }

  // Parallel end-of-iteration state load.
  st.loads.clear();
  for (const typename ExecPlan::StateLoad& load : plan.state_loads) {
    st.loads.emplace_back(load.dst_reg, st.read(load.source));
  }
  for (const auto& [reg, value] : st.loads) {
    st.regs[static_cast<std::size_t>(reg)] = value;
  }
}

/// Scalar semantics: Word values through the units' scalar cell models —
/// byte-for-byte the interpreter the plan was lowered from.
struct ScalarExecSemantics {
  using Value = Word;

  const ExecPlan& plan;
  const FuBank& bank;
  ExecState<Word> state;

  ScalarExecSemantics(const ExecPlan& p, const FuBank& b) : plan(p), bank(b) {
    state.init(p);
    for (std::size_t k = 0; k < p.const_pool.size(); ++k) {
      state.consts[k] = p.const_pool[k];
    }
  }

  [[nodiscard]] Word eval(const ExecOp& op, Word a, Word b) const {
    const int w = op.width;
    switch (op.op) {
      case Op::kAdd:
        return bank.addsub(op.fu).add(a, b);
      case Op::kSub:
        return bank.addsub(op.fu).sub(a, b);
      case Op::kNeg:
        return bank.addsub(op.fu).negate(a);
      case Op::kMul:
        return bank.mul(op.fu).mul(a, b);
      case Op::kDiv:
        return b == 0 ? 0 : trunc(bank.div(op.fu).divide(a, b).quotient, w);
      case Op::kRem:
        return b == 0 ? 0 : trunc(bank.div(op.fu).divide(a, b).remainder, w);
      case Op::kEq:
        return trunc(a, w) == trunc(b, w) ? 1 : 0;
      case Op::kIsZero:
        return trunc(a, w) == 0 ? 1 : 0;
      case Op::kNot:
        return (a & 1u) ^ 1u;
      case Op::kAnd:
        return a & b & 1u;
      case Op::kOr:
        return (a | b) & 1u;
      default:
        SCK_ASSERT(false && "non-executable op in execution plan");
    }
    return 0;
  }
};

/// 64-lane bit-plane semantics: BatchWord planes through the units'
/// *_batch models. Each value plane carries 64 independent simulations of
/// the same netlist; per-lane faults enter through the FuBank units'
/// LaneFaultSet hooks. Every case is the plane twin of the scalar case
/// above (zero-divisor lanes produce 0 exactly like the scalar
/// short-circuit; glue is evaluated on plane 0 of its 1-bit operands).
struct BatchExecSemantics {
  using Value = hw::BatchWord;

  const ExecPlan& plan;
  const FuBank& bank;
  ExecState<hw::BatchWord> state;

  BatchExecSemantics(const ExecPlan& p, const FuBank& b) : plan(p), bank(b) {
    state.init(p);
    for (std::size_t k = 0; k < p.const_pool.size(); ++k) {
      state.consts[k] = hw::broadcast_word(p.const_pool[k], p.data_width);
    }
  }

  [[nodiscard]] hw::BatchWord eval(const ExecOp& op, const hw::BatchWord& a,
                                   const hw::BatchWord& b) const {
    const int w = op.width;
    hw::BatchWord out;
    switch (op.op) {
      case Op::kAdd:
        return bank.addsub(op.fu).add_batch(a, b);
      case Op::kSub:
        return bank.addsub(op.fu).sub_batch(a, b);
      case Op::kNeg:
        return bank.addsub(op.fu).negate_batch(a);
      case Op::kMul:
        return bank.mul(op.fu).mul_batch(a, b);
      case Op::kDiv:
      case Op::kRem: {
        // The scalar path truncates both operands to the divider width and
        // forces the result to 0 on a zero divisor; mirror both in planes.
        hw::BatchWord ta;
        hw::BatchWord tb;
        for (int i = 0; i < w; ++i) {
          ta[i] = a[i];
          tb[i] = b[i];
        }
        const hw::LaneMask b_nonzero = hw::nonzero_lanes(b);
        const hw::BatchDivResult dr = bank.div(op.fu).divide_batch(ta, tb);
        const hw::BatchWord& source =
            op.op == Op::kDiv ? dr.quotient : dr.remainder;
        for (int i = 0; i < w; ++i) out[i] = source[i] & b_nonzero;
        return out;
      }
      case Op::kEq:
        out[0] = hw::equal_batch(a, b, w);
        return out;
      case Op::kIsZero:
        out[0] = hw::is_zero_batch(a, w);
        return out;
      case Op::kNot:
        out[0] = ~a[0];
        return out;
      case Op::kAnd:
        out[0] = a[0] & b[0];
        return out;
      case Op::kOr:
        out[0] = a[0] | b[0];
        return out;
      default:
        SCK_ASSERT(false && "non-executable op in execution plan");
    }
    return out;
  }
};

/// 64-lane execution backend over a compiled plan: lane L runs the same
/// netlist with lane L's injected fault (or fault-free on unassigned
/// lanes). The batched campaign drivers pack 64 faults per batch, feed
/// each lane its own input stream, and read back per-lane outputs.
class NetlistBatchSim {
 public:
  explicit NetlistBatchSim(const Netlist& netlist);

  // Holds internal references (plan/bank); pinned like the scalar sim.
  NetlistBatchSim(const NetlistBatchSim&) = delete;
  NetlistBatchSim& operator=(const NetlistBatchSim&) = delete;

  /// Remove every per-lane fault (all lanes fault-free).
  void clear_lane_faults();

  /// Inject `fault` into FU `fu_index` on the lanes of `lanes`. A lane may
  /// host at most one fault across the whole design.
  void add_lane_fault(int fu_index, const hw::FaultSite& fault,
                      hw::LaneMask lanes);

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fu_fault_universe(
      int fu_index) const {
    return bank_.fault_universe(fu_index);
  }

  /// Reset architectural state to zero on every lane.
  void reset() { sem_.state.reset(); }

  /// Run one sample iteration on all 64 lanes: `inputs` by position in
  /// netlist().input_names (planes at or above the data width must be
  /// zero, which pack() guarantees), `outputs` filled by position in
  /// netlist().outputs.
  void step_sample_batch(std::span<const hw::BatchWord> inputs,
                         std::span<hw::BatchWord> outputs);

  [[nodiscard]] const Netlist& netlist() const { return *plan_.netlist; }
  [[nodiscard]] const ExecPlan& plan() const { return plan_; }

 private:
  ExecPlan plan_;
  FuBank bank_;
  std::vector<hw::LaneFaultSet> lane_faults_;  ///< per FU instance
  BatchExecSemantics sem_;
};

}  // namespace sck::hls

// Minimal blocking/nonblocking socket plumbing for the campaign service.
//
// Addresses are strings so every binary and test speaks the same syntax:
//   tcp:<host>:<port>     loopback/LAN TCP (port 0 = kernel-assigned;
//                         read the bound port back with local_address)
//   unix:<path>           UNIX domain socket
//
// Everything here reports errors by return value + message — the service
// treats a failed socket like the store treats a failed disk: degrade or
// retry, never crash.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>

namespace sck::service {

struct Address {
  bool is_unix = false;
  std::string host;  ///< host (tcp) or filesystem path (unix)
  int port = 0;      ///< tcp only

  [[nodiscard]] std::string text() const;
};

/// Parse "tcp:host:port" / "unix:path". nullopt on malformed input.
[[nodiscard]] std::optional<Address> parse_address(const std::string& s);

/// Bind + listen. Returns the listening fd, or -1 with *error set.
[[nodiscard]] int listen_on(const Address& addr, std::string* error);

/// The actual bound address of a listening fd ("tcp:host:port" with the
/// kernel-assigned port resolved when the caller bound port 0).
[[nodiscard]] std::string local_address(int fd, const Address& requested);

/// Blocking connect. Returns the connected fd, or -1 with *error set.
[[nodiscard]] int connect_to(const Address& addr, std::string* error);

/// Blocking connect with retry (the worker/client may start before the
/// daemon finished binding). Retries ECONNREFUSED/ENOENT every 50 ms up to
/// `timeout_seconds`.
[[nodiscard]] int connect_with_retry(const Address& addr,
                                     double timeout_seconds,
                                     std::string* error);

/// Write the whole span to a BLOCKING fd (EINTR-safe). False on any error.
[[nodiscard]] bool send_all(int fd, std::span<const unsigned char> bytes);

void set_nonblocking(int fd);
void close_fd(int fd);

/// Monotonic wall clock in seconds (steady_clock) — scheduler timeouts
/// and ShardStats timing.
[[nodiscard]] double now_seconds();

}  // namespace sck::service

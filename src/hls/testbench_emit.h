// Self-checking Verilog testbench emitter.
//
// Completes the netlist toolchain: generate_netlist produces the DUT,
// NetlistSim provides golden behaviour, and this emitter freezes a
// simulator-driven stimulus/response trace into a standalone Verilog
// testbench, so the emitted RTL can be cross-validated in any external
// Verilog simulator without this library in the loop.
#pragma once

#include <cstdint>
#include <string>

#include "hls/netlist.h"

namespace sck::hls {

struct TestbenchOptions {
  int samples = 32;            ///< stimulus length
  std::uint64_t seed = 0x7B;   ///< stimulus PRNG seed
  std::string name_suffix = "_tb";
};

/// Emit a testbench module for `netlist`: drives `samples` random input
/// vectors through the DUT's FSM protocol (start, one iteration of
/// num_steps cycles, sample outputs at done) and $fatal's on the first
/// mismatch against the responses recorded from NetlistSim.
[[nodiscard]] std::string emit_testbench(const Netlist& netlist,
                                         const TestbenchOptions& options = {});

}  // namespace sck::hls

#include "codesign/explorer.h"

#include <numeric>
#include <utility>

#include "common/assert.h"
#include "hls/bind.h"
#include "hls/schedule.h"

namespace sck::codesign {

std::string to_string(const DesignPoint& p) {
  std::string s = p.kernel;
  s += '/';
  s += variant_name(p.variant);
  s += p.min_area ? "/min_area/w" : "/min_latency/w";
  s += std::to_string(p.width);
  return s;
}

std::vector<DesignPoint> DesignGrid::points() const {
  std::vector<DesignPoint> out;
  out.reserve(kernels.size() * variants.size() * objectives.size() *
              widths.size());
  for (const std::string& k : kernels) {
    for (const Variant v : variants) {
      for (const bool min_area : objectives) {
        for (const int w : widths) {
          out.push_back(DesignPoint{k, v, min_area, w});
        }
      }
    }
  }
  return out;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<ParetoMetrics>& points) {
  const auto dominates = [](const ParetoMetrics& a, const ParetoMetrics& b) {
    return a.area <= b.area && a.latency <= b.latency &&
           a.coverage >= b.coverage &&
           (a.area < b.area || a.latency < b.latency ||
            a.coverage > b.coverage);
  };
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && dominates(points[j], points[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

Explorer::Explorer(const KernelRegistry& registry, ExplorerOptions options)
    : registry_(registry), options_(std::move(options)) {}

const hls::Dfg& Explorer::reference_graph(const DesignPoint& point) {
  // '/'-separated like to_string(DesignPoint): kernel names may themselves
  // end in a variant suffix ("foo" vs "foo_sck"), so plain concatenation
  // could collide distinct (kernel, variant) pairs onto one cache slot.
  std::string key = point.kernel;
  key += '/';
  key += variant_name(point.variant);
  key += "/w";
  key += std::to_string(point.width);
  const auto it = graphs_.find(key);
  if (it != graphs_.end()) return it->second;
  const KernelSpec& kernel = registry_.at(point.kernel);
  return graphs_
      .emplace(std::move(key),
               variant_graph(kernel, point.width, point.variant))
      .first->second;
}

const SynthesizedPoint& Explorer::synthesize(const DesignPoint& point) {
  const std::string key = to_string(point);
  const auto it = designs_.find(key);
  if (it != designs_.end()) return it->second;

  const hls::Dfg& g = reference_graph(point);
  const hls::ResourceConstraints rc =
      point.min_area ? hls::ResourceConstraints::min_area()
                     : hls::ResourceConstraints::min_latency();
  const hls::Schedule s =
      point.min_area ? hls::schedule_list(g, rc) : hls::schedule_asap(g);
  hls::validate_schedule(g, s, rc);
  const hls::Binding b = hls::bind(g, s, rc);
  hls::validate_binding(g, s, b);

  SynthesizedPoint design;
  design.point = point;
  std::string name = point.kernel;
  name += variant_suffix(point.variant);
  name += point.min_area ? "_min_area" : "_min_latency";
  design.netlist = hls::generate_netlist(g, s, b, name);
  design.report = hls::evaluate_netlist(design.netlist);
  return designs_.emplace(key, std::move(design)).first->second;
}

ExplorationReport Explorer::run(const std::vector<DesignPoint>& grid) {
  ExplorationReport report;
  report.points.resize(grid.size());

  std::vector<std::size_t> order = options_.evaluation_order;
  if (order.empty()) {
    order.resize(grid.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
  }
  SCK_EXPECTS(order.size() == grid.size());

  // Results land in grid-index slots regardless of evaluation order.
  std::vector<char> seen(grid.size(), 0);
  for (const std::size_t idx : order) {
    SCK_EXPECTS(idx < grid.size());
    SCK_EXPECTS(!seen[idx] && "evaluation_order must be a permutation");
    seen[idx] = 1;
    const DesignPoint& point = grid[idx];
    const SynthesizedPoint& design = synthesize(point);
    PointResult r;
    r.point = point;
    r.hw = design.report;
    if (options_.coverage) {
      const hls::NetlistCampaignResult campaign = hls::run_netlist_campaign(
          reference_graph(point), design.netlist, options_.campaign);
      r.stats = campaign.aggregate;
      r.faults = campaign.fault_universe_size;
    }
    report.points[idx] = std::move(r);
  }

  std::vector<ParetoMetrics> metrics;
  metrics.reserve(report.points.size());
  for (const PointResult& r : report.points) {
    metrics.push_back(ParetoMetrics{r.hw.slices,
                                    static_cast<double>(r.hw.steps),
                                    options_.coverage ? r.coverage() : 0.0});
  }
  report.frontier = pareto_frontier(metrics);
  for (const std::size_t i : report.frontier) {
    report.points[i].on_frontier = true;
  }

  if (options_.sw_samples > 0) {
    for (const DesignPoint& point : grid) {
      bool done = false;
      for (const KernelSwLeg& leg : report.software) {
        done = done || leg.kernel == point.kernel;
      }
      if (done) continue;
      const KernelSpec& kernel = registry_.at(point.kernel);
      if (!kernel.measure_sw) continue;
      report.software.push_back(
          KernelSwLeg{point.kernel, kernel.measure_sw(options_.sw_samples)});
    }
  }
  return report;
}

}  // namespace sck::codesign

// Plane words: the lane dimension of the bit-plane substrate, templated.
//
// A *plane* is one bit per lane of a batch ("this lane's check failed",
// "bit i of lane L's operand", ...). Historically the plane word was
// hard-wired to uint64_t, so every batch carried exactly 64 trials — an
// accident of the machine word size. This header abstracts the plane word
// behind a small trait so the whole substrate (hw/batch.h and everything
// above it) is generic over the lane count:
//
//   Plane64            uint64_t — the bit-identity reference (64 lanes).
//   PlaneN<K>          K packed uint64_t words (64*K lanes). Plain loops
//                      over std::array, written so -O2 auto-vectorizes them
//                      with whatever ISA the build enables.
//   Plane256Avx /      intrinsic-backed 256/512-lane planes, compiled only
//   Plane512Avx        where -mavx2 / -mavx512f are on (__AVX2__ /
//                      __AVX512F__); bit-for-bit interchangeable with the
//                      portable PlaneN of the same width.
//
// The supported widths are exactly {64, 128, 256, 512}: Plane64, Plane128,
// Plane256, Plane512 (the latter two resolve to the intrinsic types when
// the build enables them, else to PlaneN). Lane packing is block-wise: lane
// L lives in 64-bit word L/64 at bit L%64, so every width is a
// concatenation of 64-lane blocks and any per-lane computation is
// width-invariant by construction.
//
// Lane-count selection is a runtime decision made once per campaign:
// resolve_lanes() honours an explicit option, then the SCK_LANES
// environment variable, then picks a default from the CPU (wider planes on
// wider-vector machines). The width only changes how many faults share a
// batch — never a single result bit; the differential suites hold every
// width bit-identical to the 64-lane reference.
#pragma once

#include <array>
#include <bit>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/assert.h"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace sck::hw {

/// Portable multi-word plane: K packed 64-bit blocks, 64*K lanes. All ops
/// are straight-line loops over the array so the optimizer can vectorize
/// them without any ISA-specific code.
template <int K>
struct PlaneN {
  static_assert(K >= 2, "use Plane64 (uint64_t) for the single-word case");
  std::array<std::uint64_t, K> w{};

  friend constexpr PlaneN operator~(const PlaneN& a) {
    PlaneN r;
    for (int i = 0; i < K; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  friend constexpr PlaneN operator&(const PlaneN& a, const PlaneN& b) {
    PlaneN r;
    for (int i = 0; i < K; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  friend constexpr PlaneN operator|(const PlaneN& a, const PlaneN& b) {
    PlaneN r;
    for (int i = 0; i < K; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  friend constexpr PlaneN operator^(const PlaneN& a, const PlaneN& b) {
    PlaneN r;
    for (int i = 0; i < K; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }
  constexpr PlaneN& operator&=(const PlaneN& o) {
    for (int i = 0; i < K; ++i) w[i] &= o.w[i];
    return *this;
  }
  constexpr PlaneN& operator|=(const PlaneN& o) {
    for (int i = 0; i < K; ++i) w[i] |= o.w[i];
    return *this;
  }
  constexpr PlaneN& operator^=(const PlaneN& o) {
    for (int i = 0; i < K; ++i) w[i] ^= o.w[i];
    return *this;
  }
  friend constexpr bool operator==(const PlaneN& a, const PlaneN& b) {
    for (int i = 0; i < K; ++i) {
      if (a.w[i] != b.w[i]) return false;
    }
    return true;
  }
};

#if defined(__AVX2__)
/// 256-lane plane backed by one AVX2 register. The per-lane accessors spill
/// through memory — they sit on batch boundaries, not in the cell-eval hot
/// loop, where only the bitwise operators run.
struct Plane256Avx {
  __m256i v = _mm256_setzero_si256();

  Plane256Avx() = default;
  explicit Plane256Avx(__m256i x) : v(x) {}

  friend Plane256Avx operator~(const Plane256Avx& a) {
    return Plane256Avx{_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
  }
  friend Plane256Avx operator&(const Plane256Avx& a, const Plane256Avx& b) {
    return Plane256Avx{_mm256_and_si256(a.v, b.v)};
  }
  friend Plane256Avx operator|(const Plane256Avx& a, const Plane256Avx& b) {
    return Plane256Avx{_mm256_or_si256(a.v, b.v)};
  }
  friend Plane256Avx operator^(const Plane256Avx& a, const Plane256Avx& b) {
    return Plane256Avx{_mm256_xor_si256(a.v, b.v)};
  }
  Plane256Avx& operator&=(const Plane256Avx& o) {
    v = _mm256_and_si256(v, o.v);
    return *this;
  }
  Plane256Avx& operator|=(const Plane256Avx& o) {
    v = _mm256_or_si256(v, o.v);
    return *this;
  }
  Plane256Avx& operator^=(const Plane256Avx& o) {
    v = _mm256_xor_si256(v, o.v);
    return *this;
  }
  friend bool operator==(const Plane256Avx& a, const Plane256Avx& b) {
    const __m256i diff = _mm256_xor_si256(a.v, b.v);
    return _mm256_testz_si256(diff, diff) != 0;
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 512-lane plane backed by one AVX-512 register.
struct Plane512Avx {
  __m512i v = _mm512_setzero_si512();

  Plane512Avx() = default;
  explicit Plane512Avx(__m512i x) : v(x) {}

  friend Plane512Avx operator~(const Plane512Avx& a) {
    return Plane512Avx{_mm512_xor_si512(a.v, _mm512_set1_epi64(-1))};
  }
  friend Plane512Avx operator&(const Plane512Avx& a, const Plane512Avx& b) {
    return Plane512Avx{_mm512_and_si512(a.v, b.v)};
  }
  friend Plane512Avx operator|(const Plane512Avx& a, const Plane512Avx& b) {
    return Plane512Avx{_mm512_or_si512(a.v, b.v)};
  }
  friend Plane512Avx operator^(const Plane512Avx& a, const Plane512Avx& b) {
    return Plane512Avx{_mm512_xor_si512(a.v, b.v)};
  }
  Plane512Avx& operator&=(const Plane512Avx& o) {
    v = _mm512_and_si512(v, o.v);
    return *this;
  }
  Plane512Avx& operator|=(const Plane512Avx& o) {
    v = _mm512_or_si512(v, o.v);
    return *this;
  }
  Plane512Avx& operator^=(const Plane512Avx& o) {
    v = _mm512_xor_si512(v, o.v);
    return *this;
  }
  friend bool operator==(const Plane512Avx& a, const Plane512Avx& b) {
    return _mm512_test_epi64_mask(_mm512_xor_si512(a.v, b.v),
                                  _mm512_xor_si512(a.v, b.v)) == 0;
  }
};
#endif  // __AVX512F__

/// The supported plane aliases. Plane256/Plane512 pick the intrinsic
/// backing when the build enables it; either backing produces identical
/// bits, so the choice is invisible to everything above the trait.
using Plane64 = std::uint64_t;
using Plane128 = PlaneN<2>;
#if defined(__AVX2__)
using Plane256 = Plane256Avx;
#else
using Plane256 = PlaneN<4>;
#endif
#if defined(__AVX512F__)
using Plane512 = Plane512Avx;
#else
using Plane512 = PlaneN<8>;
#endif

/// Per-plane-type operations the generic substrate needs beyond the bitwise
/// operators. Block discipline: word i holds lanes [64*i, 64*i + 64).
template <typename P>
struct PlaneTraits;

template <>
struct PlaneTraits<std::uint64_t> {
  static constexpr int kWords = 1;
  static constexpr int kLanes = 64;

  [[nodiscard]] static constexpr std::uint64_t zero() { return 0; }
  [[nodiscard]] static constexpr std::uint64_t ones() { return ~0ULL; }
  [[nodiscard]] static constexpr bool any(std::uint64_t p) { return p != 0; }
  [[nodiscard]] static constexpr int popcount(std::uint64_t p) {
    return std::popcount(p);
  }
  [[nodiscard]] static constexpr std::uint64_t word(std::uint64_t p, int) {
    return p;
  }
  static constexpr void set_word(std::uint64_t& p, int, std::uint64_t v) {
    p = v;
  }
};

template <int K>
struct PlaneTraits<PlaneN<K>> {
  static constexpr int kWords = K;
  static constexpr int kLanes = 64 * K;

  [[nodiscard]] static constexpr PlaneN<K> zero() { return PlaneN<K>{}; }
  [[nodiscard]] static constexpr PlaneN<K> ones() {
    PlaneN<K> p;
    for (int i = 0; i < K; ++i) p.w[i] = ~0ULL;
    return p;
  }
  [[nodiscard]] static constexpr bool any(const PlaneN<K>& p) {
    std::uint64_t acc = 0;
    for (int i = 0; i < K; ++i) acc |= p.w[i];
    return acc != 0;
  }
  [[nodiscard]] static constexpr int popcount(const PlaneN<K>& p) {
    int n = 0;
    for (int i = 0; i < K; ++i) n += std::popcount(p.w[i]);
    return n;
  }
  [[nodiscard]] static constexpr std::uint64_t word(const PlaneN<K>& p,
                                                    int i) {
    return p.w[static_cast<std::size_t>(i)];
  }
  static constexpr void set_word(PlaneN<K>& p, int i, std::uint64_t v) {
    p.w[static_cast<std::size_t>(i)] = v;
  }
};

#if defined(__AVX2__)
template <>
struct PlaneTraits<Plane256Avx> {
  static constexpr int kWords = 4;
  static constexpr int kLanes = 256;

  [[nodiscard]] static Plane256Avx zero() { return Plane256Avx{}; }
  [[nodiscard]] static Plane256Avx ones() {
    return Plane256Avx{_mm256_set1_epi64x(-1)};
  }
  [[nodiscard]] static bool any(const Plane256Avx& p) {
    return _mm256_testz_si256(p.v, p.v) == 0;
  }
  [[nodiscard]] static int popcount(const Plane256Avx& p) {
    alignas(32) std::uint64_t w[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), p.v);
    return std::popcount(w[0]) + std::popcount(w[1]) + std::popcount(w[2]) +
           std::popcount(w[3]);
  }
  [[nodiscard]] static std::uint64_t word(const Plane256Avx& p, int i) {
    alignas(32) std::uint64_t w[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), p.v);
    return w[i];
  }
  static void set_word(Plane256Avx& p, int i, std::uint64_t v) {
    alignas(32) std::uint64_t w[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), p.v);
    w[i] = v;
    p.v = _mm256_load_si256(reinterpret_cast<const __m256i*>(w));
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
template <>
struct PlaneTraits<Plane512Avx> {
  static constexpr int kWords = 8;
  static constexpr int kLanes = 512;

  [[nodiscard]] static Plane512Avx zero() { return Plane512Avx{}; }
  [[nodiscard]] static Plane512Avx ones() {
    return Plane512Avx{_mm512_set1_epi64(-1)};
  }
  [[nodiscard]] static bool any(const Plane512Avx& p) {
    return _mm512_test_epi64_mask(p.v, p.v) != 0;
  }
  [[nodiscard]] static int popcount(const Plane512Avx& p) {
    alignas(64) std::uint64_t w[8];
    _mm512_store_si512(reinterpret_cast<__m512i*>(w), p.v);
    int n = 0;
    for (int i = 0; i < 8; ++i) n += std::popcount(w[i]);
    return n;
  }
  [[nodiscard]] static std::uint64_t word(const Plane512Avx& p, int i) {
    alignas(64) std::uint64_t w[8];
    _mm512_store_si512(reinterpret_cast<__m512i*>(w), p.v);
    return w[i];
  }
  static void set_word(Plane512Avx& p, int i, std::uint64_t v) {
    alignas(64) std::uint64_t w[8];
    _mm512_store_si512(reinterpret_cast<__m512i*>(w), p.v);
    w[i] = v;
    p.v = _mm512_load_si512(reinterpret_cast<const __m512i*>(w));
  }
};
#endif  // __AVX512F__

// ---- generic plane helpers -------------------------------------------------

template <typename P>
[[nodiscard]] constexpr P plane_zero() {
  return PlaneTraits<P>::zero();
}

template <typename P>
[[nodiscard]] constexpr P plane_ones() {
  return PlaneTraits<P>::ones();
}

/// Any lane set?
template <typename P>
[[nodiscard]] constexpr bool plane_any(const P& p) {
  return PlaneTraits<P>::any(p);
}

/// Number of set lanes.
template <typename P>
[[nodiscard]] constexpr int plane_popcount(const P& p) {
  return PlaneTraits<P>::popcount(p);
}

/// Bit of lane `lane`.
template <typename P>
[[nodiscard]] constexpr bool plane_test(const P& p, int lane) {
  return ((PlaneTraits<P>::word(p, lane / 64) >> (lane % 64)) & 1u) != 0;
}

/// Plane with exactly lane `lane` set.
template <typename P>
[[nodiscard]] constexpr P plane_bit(int lane) {
  P p = PlaneTraits<P>::zero();
  PlaneTraits<P>::set_word(p, lane / 64, std::uint64_t{1} << (lane % 64));
  return p;
}

/// Plane with the low `count` lanes set (count in [0, kLanes]).
template <typename P>
[[nodiscard]] constexpr P plane_prefix(int count) {
  P p = PlaneTraits<P>::zero();
  for (int i = 0; i < PlaneTraits<P>::kWords; ++i) {
    const int lo = 64 * i;
    if (count >= lo + 64) {
      PlaneTraits<P>::set_word(p, i, ~0ULL);
    } else if (count > lo) {
      PlaneTraits<P>::set_word(p, i,
                               (std::uint64_t{1} << (count - lo)) - 1);
    }
  }
  return p;
}

/// Broadcast a scalar bit to all lanes.
template <typename P>
[[nodiscard]] constexpr P plane_broadcast(unsigned bit_value) {
  return bit_value ? PlaneTraits<P>::ones() : PlaneTraits<P>::zero();
}

/// plane_index<P>(j) bit L == bit j of the lane index L — the planes of the
/// identity packing "lane L carries value L" at any width. For j < 6 every
/// 64-lane block repeats the same pattern; for j >= 6 the bit comes from
/// the block index, so word w broadcasts bit (j - 6) of w.
template <typename P>
[[nodiscard]] constexpr P plane_index(int j) {
  constexpr std::uint64_t kBlockPattern[6] = {
      0xAAAA'AAAA'AAAA'AAAAULL, 0xCCCC'CCCC'CCCC'CCCCULL,
      0xF0F0'F0F0'F0F0'F0F0ULL, 0xFF00'FF00'FF00'FF00ULL,
      0xFFFF'0000'FFFF'0000ULL, 0xFFFF'FFFF'0000'0000ULL};
  P p = PlaneTraits<P>::zero();
  for (int w = 0; w < PlaneTraits<P>::kWords; ++w) {
    const std::uint64_t word =
        j < 6 ? kBlockPattern[j]
              : (((static_cast<unsigned>(w) >> (j - 6)) & 1u) ? ~0ULL : 0ULL);
    PlaneTraits<P>::set_word(p, w, word);
  }
  return p;
}

// ---- runtime lane-count selection ------------------------------------------

/// True iff `lanes` is a plane width this build supports.
[[nodiscard]] constexpr bool lanes_supported(int lanes) {
  return lanes == 64 || lanes == 128 || lanes == 256 || lanes == 512;
}

/// CPU-derived default lane count: wider planes on wider-vector machines.
/// Portable PlaneN serves every width on every CPU — the probe only picks
/// how much work one batch should carry, it never changes a result bit.
[[nodiscard]] inline int default_lanes() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return 512;
  if (__builtin_cpu_supports("avx2")) return 256;
#endif
  return 128;
}

/// Resolve a campaign's lane count, once per campaign: an explicit
/// `requested` wins, then the SCK_LANES environment variable, then the CPU
/// default. Explicit values (option or environment) must name a supported
/// width exactly — silently snapping 100 lanes to 128 would misreport what
/// was measured, and a typo'd SCK_LANES silently parsing to 0 (the old
/// std::atoi behaviour) would misreport it as "CPU default, on purpose".
/// Malformed values therefore abort with the offending text.
[[nodiscard]] inline int resolve_lanes(int requested) {
  int lanes = requested;
  if (lanes <= 0) {
    const char* env = std::getenv("SCK_LANES");
    if (env != nullptr && env[0] != '\0') {
      int parsed = 0;
      const char* end = env + std::char_traits<char>::length(env);
      const auto [ptr, ec] = std::from_chars(env, end, parsed);
      if (ec != std::errc{} || ptr != end || !lanes_supported(parsed)) {
        std::fprintf(stderr,
                     "SCK_LANES=\"%s\" is not a supported lane count "
                     "(expected 64, 128, 256 or 512)\n",
                     env);
        std::abort();
      }
      lanes = parsed;
    }
  }
  if (lanes <= 0) return default_lanes();
  SCK_EXPECTS(lanes_supported(lanes));
  return lanes;
}

}  // namespace sck::hw

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace sck {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

void TextTable::print(std::ostream& os) const {
  // Compute column widths over header and all rows.
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return;

  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = std::max(width[c], header_[c].size());
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  const auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << s;
      for (std::size_t i = s.size(); i < width[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  if (!header_.empty()) {
    emit_row(header_);
    hline();
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      hline();
    } else {
      emit_row(r.cells);
    }
  }
  hline();
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace sck

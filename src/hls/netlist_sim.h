// Cycle-accurate interpreter for generated netlists.
//
// Executes the FSM microcode step by step exactly as the emitted RTL would:
// inputs are latched for the iteration, FU results are registered at the
// end of their step, same-step glue reads combinational wires, and the
// architectural state registers load in parallel at the end of the
// iteration.
//
// The simulator evaluates arithmetic functional units through the
// functional hardware models of src/hw, so a cell fault can be injected
// into any FU instance — this closes the loop between synthesis and the
// fault model: synthesize a self-checking FIR, break one adder slice, and
// watch the "error" output rise (the end-to-end CED demonstration).
//
// Hot path: step_sample_indexed takes inputs by position (the order of
// netlist().input_names) and writes outputs by position (the order of
// netlist().outputs); all per-step storage is preallocated flat vectors
// indexed by node/register id, so a sample iteration performs no hashing
// and no allocation. The name-keyed step_sample remains as a convenience
// wrapper for tests and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/word.h"
#include "hls/netlist.h"
#include "hw/array_multiplier.h"
#include "hw/fault_site.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck::hls {

class NetlistSim {
 public:
  explicit NetlistSim(const Netlist& netlist);

  /// Inject a cell fault into one functional-unit instance (or clear it
  /// with an inactive FaultSite). Comparators and glue are checker-side and
  /// accept no faults (hw/comparator.h).
  void set_fu_fault(int fu_index, const hw::FaultSite& fault);

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fu_fault_universe(
      int fu_index) const;

  /// Reset architectural state to zero.
  void reset();

  /// Run one sample iteration on the hot path: `inputs` by position in
  /// netlist().input_names, `outputs` filled by position in
  /// netlist().outputs. No hashing, no allocation.
  void step_sample_indexed(std::span<const Word> inputs,
                           std::span<Word> outputs);

  /// Name-keyed convenience wrapper around step_sample_indexed.
  [[nodiscard]] std::unordered_map<std::string, Word> step_sample(
      const std::unordered_map<std::string, Word>& inputs);

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }

 private:
  [[nodiscard]] Word read_operand(const Operand& op) const;
  void run_iteration();

  const Netlist& netlist_;
  std::vector<Word> reg_value_;
  std::vector<Word> input_value_;

  // Combinational wires, flat by producer NodeId. A wire is readable only
  // in the step that wrote it; the stamp check enforces "wire read before
  // write" without clearing the table every step.
  std::vector<Word> wire_value_;
  std::vector<std::uint32_t> wire_stamp_;
  std::uint32_t stamp_ = 0;

  // Reused per-step / per-iteration commit buffers (no allocation after
  // the first iteration).
  std::vector<std::pair<int, Word>> latches_;
  std::vector<std::pair<int, Word>> loads_;

  // One functional model per FU instance (index-aligned with netlist.fus;
  // null for checker-side classes).
  std::vector<std::unique_ptr<hw::RippleCarryAdder>> addsub_;
  std::vector<std::unique_ptr<hw::ArrayMultiplier>> mul_;
  std::vector<std::unique_ptr<hw::RestoringDivider>> div_;
};

}  // namespace sck::hls

// Tests for the DFG IR and the kernel builders: structure, validation,
// and reference evaluation against hand-computed golden models.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hls/builder.h"
#include "hls/dfg.h"

namespace sck::hls {
namespace {

using InputMap = std::unordered_map<std::string, std::uint64_t>;

TEST(Dfg, BuildAndTopoOrder) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  const NodeId s = g.add(a, b);
  const NodeId p = g.mul(s, a);
  (void)g.output("out", p);
  g.validate();

  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), g.size());
  std::vector<int> pos(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    if (g.node(id).op == Op::kReg) continue;
    for (const NodeId in : g.node(id).ins) {
      EXPECT_LT(pos[static_cast<std::size_t>(in)],
                pos[static_cast<std::size_t>(id)]);
    }
  }
}

TEST(Dfg, RegisterCycleIsSequentialNotCombinational) {
  Dfg g;
  const NodeId x = g.input("x", 8);
  const NodeId acc = g.state_reg("acc", 8);
  const NodeId s = g.add(acc, x);  // acc feeds an op that feeds acc: legal
  g.set_reg_next(acc, s);
  (void)g.output("acc_out", s);
  g.validate();

  std::vector<std::uint64_t> state{0};
  EXPECT_EQ(g.eval(InputMap{{"x", 5}}, state).outputs.at("acc_out"), 5u);
  EXPECT_EQ(state[0], 5u);
  EXPECT_EQ(g.eval(InputMap{{"x", 7}}, state).outputs.at("acc_out"), 12u);
  EXPECT_EQ(state[0], 12u);
}

TEST(Dfg, UnwiredRegisterDies) {
  Dfg g;
  (void)g.input("x", 8);
  (void)g.state_reg("d", 8);
  EXPECT_DEATH(g.validate(), "unwired");
}

TEST(Dfg, ArityViolationDies) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  EXPECT_DEATH((void)g.op(Op::kAdd, {a}, 8), "Precondition");
}

TEST(Dfg, ConstantsAreSignExtendedIntoTheRing) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId c = g.constant(-3, 8);
  (void)g.output("y", g.mul(c, a));
  g.validate();
  std::vector<std::uint64_t> state;
  // -3 * 5 = -15 = 0xF1 in the 8-bit ring.
  EXPECT_EQ(g.eval(InputMap{{"a", 5}}, state).outputs.at("y"), 0xF1u);
}

TEST(Dfg, TopoOrderCacheInvalidatesOnMutation) {
  // topo_order() is cached on the graph (hoisted out of eval's hot loop);
  // any mutation must invalidate it.
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  (void)g.output("s", g.add(a, b));
  const std::size_t before = g.topo_order().size();
  EXPECT_EQ(before, g.size());

  const NodeId p = g.mul(a, b);  // append after the cache was filled
  (void)g.output("p", p);
  EXPECT_EQ(g.topo_order().size(), g.size());
  EXPECT_GT(g.size(), before);

  // set_reg_next rewires an edge: the refreshed order must still be a
  // valid topological order (validate() recomputes and checks it).
  const NodeId acc = g.state_reg("acc", 8);
  (void)g.topo_order();
  g.set_reg_next(acc, g.add(acc, p));
  g.validate();
}

TEST(DfgBatch, EvaluatorMatchesScalarEvalLaneForLane) {
  // The plane-wise evaluator must agree with eval() on every lane of a
  // per-lane input stream, including the sequential state.
  const Dfg g = build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 8});
  constexpr int kSamples = 12;

  DfgBatchEvaluator batch(g);
  std::vector<hw::BatchWord> reg_state(g.state_regs().size());
  std::vector<hw::BatchWord> in(g.inputs().size());
  std::vector<hw::BatchWord> out(g.outputs().size());

  std::vector<std::vector<std::uint64_t>> scalar_state(
      hw::kLanes, std::vector<std::uint64_t>(g.state_regs().size(), 0));
  std::vector<Xoshiro256> rng;
  for (int lane = 0; lane < hw::kLanes; ++lane) {
    rng.emplace_back(0xD1CE + static_cast<std::uint64_t>(lane));
  }

  std::vector<Word> lane_vals(hw::kLanes);
  for (int k = 0; k < kSamples; ++k) {
    std::vector<std::vector<Word>> sample_in(g.inputs().size());
    for (std::size_t i = 0; i < g.inputs().size(); ++i) {
      const int w = g.node(g.inputs()[i]).width;
      for (int lane = 0; lane < hw::kLanes; ++lane) {
        lane_vals[static_cast<std::size_t>(lane)] =
            rng[static_cast<std::size_t>(lane)].bounded(Word{1} << w);
      }
      sample_in[i] = lane_vals;
      in[i] = hw::pack(lane_vals, w);
    }
    batch.eval(in, reg_state, out);

    for (int lane = 0; lane < hw::kLanes; ++lane) {
      InputMap scalar_in;
      for (std::size_t i = 0; i < g.inputs().size(); ++i) {
        scalar_in[g.node(g.inputs()[i]).name] =
            sample_in[i][static_cast<std::size_t>(lane)];
      }
      const auto want =
          g.eval(scalar_in, scalar_state[static_cast<std::size_t>(lane)]);
      for (std::size_t o = 0; o < g.outputs().size(); ++o) {
        const Node& n = g.node(g.outputs()[o]);
        ASSERT_EQ(hw::lane_value(out[o], lane, n.width),
                  want.outputs.at(n.name))
            << "lane " << lane << " sample " << k << " output " << n.name;
      }
    }
  }
}

TEST(BuildFir, StructureMatchesSpec) {
  const FirSpec spec{{1, 2, 3, 4, 5, 6, 7, 8}, 16};
  const Dfg g = build_fir(spec);
  const auto hist = g.op_histogram();
  EXPECT_EQ(hist.at(Op::kMul), 8);
  EXPECT_EQ(hist.at(Op::kAdd), 7);
  EXPECT_EQ(hist.at(Op::kReg), 7);
  EXPECT_EQ(hist.at(Op::kInput), 1);
  EXPECT_EQ(hist.at(Op::kOutput), 1);
  EXPECT_EQ(hist.at(Op::kConst), 8);
}

/// Golden FIR: direct convolution with the same ring semantics.
std::vector<Word> golden_fir(const std::vector<long long>& coeffs,
                             const std::vector<Word>& xs, int width) {
  std::vector<Word> ys;
  std::deque<Word> delay(coeffs.size(), 0);
  for (const Word x : xs) {
    delay.push_front(trunc(x, width));
    delay.pop_back();
    Word acc = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      acc = add(acc, mul(from_signed(coeffs[i], width), delay[i], width),
                width);
    }
    ys.push_back(acc);
  }
  return ys;
}

TEST(BuildFir, MatchesDirectConvolution) {
  for (const int taps : {1, 2, 3, 5, 8, 16}) {
    std::vector<long long> coeffs;
    for (int i = 0; i < taps; ++i) coeffs.push_back(3 * i - taps);
    const FirSpec spec{coeffs, 16};
    const Dfg g = build_fir(spec);

    Xoshiro256 rng(0xF1A + static_cast<std::uint64_t>(taps));
    std::vector<Word> xs;
    for (int i = 0; i < 64; ++i) xs.push_back(rng.bounded(1u << 16));
    const std::vector<Word> want = golden_fir(coeffs, xs, 16);

    std::vector<std::uint64_t> state(g.state_regs().size(), 0);
    for (std::size_t k = 0; k < xs.size(); ++k) {
      const auto out = g.eval(InputMap{{"x", xs[k]}}, state);
      ASSERT_EQ(out.outputs.at("y"), want[k]) << "taps=" << taps << " k=" << k;
    }
  }
}

TEST(BuildIir, MatchesDifferenceEquation) {
  const IirBiquadSpec spec{3, -2, 1, 1, -1, 12};
  const Dfg g = build_iir_biquad(spec);

  Xoshiro256 rng(0x11B);
  std::vector<std::uint64_t> state(g.state_regs().size(), 0);
  Word x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  for (int k = 0; k < 100; ++k) {
    const Word x = rng.bounded(1u << 12);
    const int w = 12;
    const Word ff =
        add(add(mul(from_signed(3, w), x, w), mul(from_signed(-2, w), x1, w), w),
            mul(from_signed(1, w), x2, w), w);
    const Word fb =
        add(mul(from_signed(1, w), y1, w), mul(from_signed(-1, w), y2, w), w);
    const Word want = sub(ff, fb, w);

    const auto out = g.eval(InputMap{{"x", x}}, state);
    ASSERT_EQ(out.outputs.at("y"), want) << "k=" << k;
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = want;
  }
}

TEST(BuildDot, MatchesInnerProduct) {
  const Dfg g = build_dot(5, 16);
  InputMap in;
  Word want = 0;
  for (int i = 0; i < 5; ++i) {
    const Word a = static_cast<Word>(10 + i);
    const Word b = static_cast<Word>(3 * i + 1);
    in["a" + std::to_string(i)] = a;
    in["b" + std::to_string(i)] = b;
    want = add(want, mul(a, b, 16), 16);
  }
  std::vector<std::uint64_t> state;
  EXPECT_EQ(g.eval(in, state).outputs.at("dot"), want);
}

TEST(BuildMatvec, MatchesMatrixVectorProduct) {
  const std::vector<std::vector<long long>> m{{1, 2, 3}, {-1, 0, 5}};
  const Dfg g = build_matvec(m, 16);
  const InputMap in{{"v0", 7}, {"v1", 9}, {"v2", 2}};
  std::vector<std::uint64_t> state;
  const auto out = g.eval(in, state);
  EXPECT_EQ(to_signed(out.outputs.at("y0"), 16), 7 + 18 + 6);
  EXPECT_EQ(to_signed(out.outputs.at("y1"), 16), -7 + 0 + 10);
}

TEST(BuildMovingSum, MatchesWindowRecomputation) {
  // The incremental y[k] = y[k-1] + x[k] - x[k-window] update must equal a
  // from-scratch sum of the last `window` inputs in the 2^w ring — for
  // every prefix, across window depths (the state: window delay registers
  // plus the running-sum register).
  for (const int window : {1, 2, 4, 7}) {
    const int w = 12;
    const Dfg g = build_moving_sum(window, w);
    ASSERT_EQ(g.state_regs().size(), static_cast<std::size_t>(window) + 1);

    Xoshiro256 rng(0x3053 + static_cast<std::uint64_t>(window));
    std::vector<std::uint64_t> state(g.state_regs().size(), 0);
    std::vector<Word> history;
    for (int k = 0; k < 64; ++k) {
      const Word x = rng.bounded(Word{1} << w);
      history.push_back(x);
      Word want = 0;
      for (int i = 0; i < window; ++i) {
        const int idx = k - i;
        if (idx < 0) break;
        want = add(want, history[static_cast<std::size_t>(idx)], w);
      }
      const auto out = g.eval(InputMap{{"x", x}}, state);
      ASSERT_EQ(out.outputs.at("y"), want)
          << "window=" << window << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace sck::hls

// Deterministic pseudo-random number generation for sampled fault-injection
// campaigns. Every sampled experiment in the repository takes an explicit
// seed so results are bit-reproducible across runs and machines; we use
// SplitMix64 (Steele et al.) for seeding and xoshiro256** (Blackman/Vigna)
// for the stream, both public-domain algorithms reimplemented here to avoid
// any dependence on the standard library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>

namespace sck {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with a 2^256-1 period.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free fast path is fine here: bias is < 2^-32 for the bounds
    // used by the campaigns (all far below 2^32), negligible vs sampling noise.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace sck

#include "hls/netlist_campaign.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "fault/batch.h"
#include "fault/outcome.h"
#include "fault/parallel.h"
#include "hls/netlist_exec.h"

namespace sck::hls {

namespace {

/// Per-fault seed derivation (StreamMode::kPerFault): fault streams must
/// depend only on (seed, global fault index) so the campaign is invariant
/// under the thread count, the lane packing, the dynamic schedule AND the
/// slice partition a distributed run chooses (the Xoshiro constructor
/// SplitMix-expands the mixed value).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Per-sample seed derivation (StreamMode::kShared): one stream keyed by
/// (seed, sample index), identical for every fault. The extra constant
/// decouples it from the per-fault keying above, so switching modes never
/// replays the same stimuli under a different meaning.
[[nodiscard]] std::uint64_t sample_stream_seed(std::uint64_t seed,
                                               std::uint64_t sample_index) {
  return seed ^ 0xD1B54A32D192ED03ULL ^
         ((sample_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Materialise the shared input stream (samples x graph inputs,
/// sample-major), bounded per input width exactly like the per-fault
/// generation.
[[nodiscard]] std::vector<Word> make_shared_stream(
    const Dfg& graph, const NetlistCampaignOptions& options) {
  const std::size_t num_inputs = graph.inputs().size();
  std::vector<Word> stream(
      static_cast<std::size_t>(options.samples_per_fault) * num_inputs);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    Xoshiro256 rng(sample_stream_seed(options.seed,
                                      static_cast<std::uint64_t>(k)));
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      stream[static_cast<std::size_t>(k) * num_inputs + i] =
          rng.bounded(Word{1} << n.width);
    }
  }
  return stream;
}

/// One injected-fault run on the scalar backend: an input stream through
/// the faulty netlist against the fault-free reference model. The stream
/// is per-fault (seeded by the GLOBAL `fault_index`) or, when
/// `shared_stream` is non-empty, the campaign-wide shared one.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   const NetlistCampaignOptions& options,
                                   std::uint64_t fault_index,
                                   std::span<const Word> shared_stream) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  Xoshiro256 rng(fault_stream_seed(options.seed, fault_index));
  fault::CampaignStats stats;
  sim.reset();
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  std::vector<Word> in(netlist.input_names.size(), 0);
  std::vector<Word> out(netlist.outputs.size(), 0);
  std::unordered_map<std::string, std::uint64_t> ref_in;
  for (int k = 0; k < options.samples_per_fault; ++k) {
    // Input i of the netlist is input i of the graph (the netlist builder
    // preserves the graph's input order).
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      const Word v =
          shared_stream.empty()
              ? rng.bounded(Word{1} << n.width)
              : shared_stream[static_cast<std::size_t>(k) * num_inputs + i];
      in[i] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    sim.step_sample_indexed(in, out);

    bool erroneous = false;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      const std::string& name = netlist.outputs[i].name;
      if (name == "error") continue;  // reference error flag is always 0
      if (out[i] != want.outputs.at(name)) erroneous = true;
    }
    const bool detected =
        error_output >= 0 && out[static_cast<std::size_t>(error_output)] != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  return stats;
}

/// One W-fault batch on the bit-plane backend over a job SLICE: lane L
/// runs job slice[at + L]'s fault with global job (global_base + at + L)'s
/// input stream — or, under shared streams, the one campaign-wide stream
/// broadcast to every lane — checked against the plane-wise reference
/// model. Writes each lane's stats into out[at + L] — per-lane
/// classification is exactly the scalar classify(), so the slot contents
/// match run_one_fault bit for bit at every lane width and every slice
/// partition.
template <typename P>
void run_fault_batch(const Dfg& graph, NetlistBatchSimT<P>& sim,
                     DfgBatchEvaluatorT<P>& ref,
                     std::span<const FaultJob> slice, std::size_t at,
                     std::uint64_t global_base,
                     const NetlistCampaignOptions& options,
                     std::span<const Word> shared_stream,
                     std::span<fault::CampaignStats> out) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, slice.size() - at));

  sim.clear_lane_faults();
  std::vector<Xoshiro256> rng;
  if (shared_stream.empty()) rng.reserve(static_cast<std::size_t>(lanes));
  for (int lane = 0; lane < lanes; ++lane) {
    const std::size_t j = at + static_cast<std::size_t>(lane);
    sim.add_lane_fault(static_cast<int>(slice[j].fu), slice[j].site,
                       hw::plane_bit<P>(lane));
    if (shared_stream.empty()) {
      rng.emplace_back(fault_stream_seed(options.seed, global_base + j));
    }
  }
  sim.reset();

  std::vector<hw::BatchWordT<P>> in(netlist.input_names.size());
  std::vector<hw::BatchWordT<P>> batch_out(netlist.outputs.size());
  std::vector<hw::BatchWordT<P>> want(graph.outputs().size());
  std::vector<hw::BatchWordT<P>> ref_state(graph.state_regs().size());
  std::vector<Word> lane_vals(static_cast<std::size_t>(lanes), 0);

  // Output i of the netlist is output i of the graph (the netlist builder
  // preserves the graph's output order); sanity-checked by name below.
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    SCK_EXPECTS(graph.node(graph.outputs()[i]).name ==
                netlist.outputs[i].name);
  }

  for (int k = 0; k < options.samples_per_fault; ++k) {
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      if (shared_stream.empty()) {
        for (int lane = 0; lane < lanes; ++lane) {
          lane_vals[static_cast<std::size_t>(lane)] =
              rng[static_cast<std::size_t>(lane)].bounded(Word{1} << n.width);
        }
        in[i] = hw::pack<P>(lane_vals, n.width);
      } else {
        in[i] = hw::broadcast_word<P>(
            shared_stream[static_cast<std::size_t>(k) * num_inputs + i],
            n.width);
      }
    }
    ref.eval(in, ref_state, want);
    sim.step_sample_batch(in, batch_out);

    P erroneous{};
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(batch_out[i], want[i]);
    }
    const P detected =
        error_output >= 0
            ? batch_out[static_cast<std::size_t>(error_output)][0]
            : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      out[at + static_cast<std::size_t>(lane)].record(
          fault::lane_outcome(verdict, lane));
    }
  }
}

/// One W-fault batch on the incremental backend over a job slice: replay
/// the union fan-out cone of the batch's faults over the precomputed
/// golden trace, classifying against the pre-broadcast reference outputs.
/// With fault dropping, a lane retires after its first detected sample
/// (recorded, then excluded); once every lane retired the batch ends
/// early.
template <typename P>
void run_incremental_batch(NetlistIncrementalSimT<P>& sim,
                           const GoldenTrace& trace,
                           std::span<const hw::BatchWordT<P>> want_planes,
                           std::span<const FaultJob> slice, std::size_t at,
                           const NetlistCampaignOptions& options,
                           std::span<fault::CampaignStats> out) {
  const ExecPlan& plan = sim.plan();
  const std::int32_t error_output = plan.error_output;
  const std::size_t num_outputs = plan.outputs.size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, slice.size() - at));

  sim.clear_lane_faults();
  for (int lane = 0; lane < lanes; ++lane) {
    const std::size_t j = at + static_cast<std::size_t>(lane);
    sim.add_lane_fault(static_cast<int>(slice[j].fu), slice[j].site,
                       hw::plane_bit<P>(lane));
  }
  sim.reset();

  std::vector<hw::BatchWordT<P>> batch_out(num_outputs);
  P active = hw::plane_prefix<P>(lanes);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    sim.replay_sample(trace, k, batch_out);

    P erroneous{};
    for (std::size_t i = 0; i < num_outputs; ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(
          batch_out[i],
          want_planes[static_cast<std::size_t>(k) * num_outputs + i]);
    }
    const P detected =
        error_output >= 0
            ? batch_out[static_cast<std::size_t>(error_output)][0]
            : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      if (hw::plane_test(active, lane)) {
        out[at + static_cast<std::size_t>(lane)].record(
            fault::lane_outcome(verdict, lane));
      }
    }

    if (options.fault_dropping) {
      const P retire = detected & active;
      if (hw::plane_any(retire)) {
        active &= ~retire;
        if (!hw::plane_any(active)) break;
        sim.set_active_lanes(active);
      }
    }
  }
}

}  // namespace

std::vector<FaultJob> enumerate_fault_jobs(
    const Netlist& netlist, const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.fault_stride > 0);
  std::vector<FaultJob> jobs;
  const FuBank probe(netlist);
  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const auto universe = probe.fault_universe(static_cast<int>(f));
    // Checker-side units host no faults.
    for (std::size_t i = 0; i < universe.size();
         i += static_cast<std::size_t>(options.fault_stride)) {
      jobs.push_back(FaultJob{static_cast<std::int32_t>(f), universe[i]});
    }
  }
  return jobs;
}

NetlistCampaignResult reduce_campaign_slices(
    const Netlist& netlist, std::span<const FaultJob> jobs,
    std::span<const fault::CampaignStats> per_job) {
  SCK_EXPECTS(jobs.size() == per_job.size());
  NetlistCampaignResult result;
  std::vector<std::int64_t> unit_of_fu(netlist.fus.size(), -1);
  // Jobs are unit-major (enumerate_fault_jobs walks FUs in index order),
  // so first-appearance order of an FU in the job list IS the sequential
  // sweep's per-unit order — and every FU with a non-empty (strided)
  // universe appears, because stride always keeps site 0.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto f = static_cast<std::size_t>(jobs[j].fu);
    SCK_EXPECTS(f < netlist.fus.size());
    if (unit_of_fu[f] < 0) {
      unit_of_fu[f] = static_cast<std::int64_t>(result.per_unit.size());
      UnitCoverage unit;
      unit.fu_index = jobs[j].fu;
      unit.fu_name = netlist.fus[f].name;
      result.per_unit.push_back(std::move(unit));
    }
    UnitCoverage& unit =
        result.per_unit[static_cast<std::size_t>(unit_of_fu[f])];
    unit.stats += per_job[j];
    ++unit.faults;
    result.aggregate += per_job[j];
    ++result.fault_universe_size;
  }
  return result;
}

/// All campaign-wide shared state, computed once at runner construction.
struct CampaignSliceRunner::Impl {
  Dfg graph;
  Netlist netlist;
  NetlistCampaignOptions options;
  ExecPlan plan;  ///< plan.netlist points at this Impl's own netlist copy
  int lane_width = 0;
  std::vector<FaultJob> jobs;
  std::vector<Word> shared_stream;  ///< kShared only
  // Incremental backend only: cones + golden trace + the scalar reference
  // outputs (broadcast to planes per run_slice call, cheap).
  std::unique_ptr<FaultCones> cones;
  GoldenTrace trace;
  std::vector<Word> want_values;  ///< samples x outputs, width-truncated
};

CampaignSliceRunner::CampaignSliceRunner(const Dfg& graph,
                                         const Netlist& netlist,
                                         const NetlistCampaignOptions& options)
    : impl_([&] {
        SCK_EXPECTS(options.samples_per_fault > 0);
        SCK_EXPECTS(options.fault_stride > 0);
        SCK_EXPECTS(netlist.input_names.size() == graph.inputs().size());
        SCK_EXPECTS((options.backend != NetlistBackend::kIncremental ||
                     options.stream == StreamMode::kShared) &&
                    "the incremental backend replays one shared golden trace");
        SCK_EXPECTS((!options.fault_dropping ||
                     options.backend == NetlistBackend::kIncremental) &&
                    "fault dropping is an incremental-backend feature");

        auto impl = std::make_unique<Impl>();
        impl->graph = graph;
        impl->netlist = netlist;
        impl->options = options;
        // Warm the copy's topo-order cache before any worker thread reads
        // it (Dfg::topo_order fills lazily and unsynchronized).
        (void)impl->graph.topo_order();

        // Compile the execution plan ONCE against the runner's own netlist
        // copy and share it const across every slice and worker context.
        impl->plan = compile_execution_plan(impl->netlist);
        impl->lane_width = hw::resolve_lanes(options.lanes);
        impl->jobs = enumerate_fault_jobs(impl->netlist, options);

        // The shared input stream (kShared only): one (seed, sample
        // index)-keyed stream every fault replays.
        if (options.stream == StreamMode::kShared) {
          impl->shared_stream = make_shared_stream(impl->graph, options);
        }

        if (options.backend == NetlistBackend::kIncremental) {
          // The fault-free work happens ONCE per campaign: the golden
          // trace (scalar replay recording every wire) and the scalar Dfg
          // reference outputs.
          impl->cones = std::make_unique<FaultCones>(impl->plan);
          impl->trace = record_golden_trace(impl->plan, impl->shared_stream,
                                            options.samples_per_fault);
          const std::size_t num_outputs = impl->netlist.outputs.size();
          for (std::size_t i = 0; i < num_outputs; ++i) {
            SCK_EXPECTS(impl->graph.node(impl->graph.outputs()[i]).name ==
                        impl->netlist.outputs[i].name);
          }
          impl->want_values.resize(
              static_cast<std::size_t>(options.samples_per_fault) *
              num_outputs);
          std::vector<std::uint64_t> ref_state(impl->graph.state_regs().size(),
                                               0);
          std::unordered_map<std::string, std::uint64_t> ref_in;
          for (int k = 0; k < options.samples_per_fault; ++k) {
            for (std::size_t i = 0; i < impl->graph.inputs().size(); ++i) {
              const Node& n = impl->graph.node(impl->graph.inputs()[i]);
              ref_in[n.name] =
                  impl->shared_stream[static_cast<std::size_t>(k) *
                                          impl->graph.inputs().size() +
                                      i];
            }
            const auto want = impl->graph.eval(ref_in, ref_state);
            for (std::size_t i = 0; i < num_outputs; ++i) {
              const Node& n = impl->graph.node(impl->graph.outputs()[i]);
              impl->want_values[static_cast<std::size_t>(k) * num_outputs +
                                i] = trunc(want.outputs.at(n.name), n.width);
            }
          }
        }
        return impl;
      }()) {}

CampaignSliceRunner::~CampaignSliceRunner() = default;

const Dfg& CampaignSliceRunner::graph() const { return impl_->graph; }
const Netlist& CampaignSliceRunner::netlist() const { return impl_->netlist; }
const ExecPlan& CampaignSliceRunner::plan() const { return impl_->plan; }
const NetlistCampaignOptions& CampaignSliceRunner::options() const {
  return impl_->options;
}
const std::vector<FaultJob>& CampaignSliceRunner::jobs() const {
  return impl_->jobs;
}
int CampaignSliceRunner::lanes() const { return impl_->lane_width; }

void CampaignSliceRunner::run_slice(std::uint64_t base, std::size_t count,
                                    std::span<fault::CampaignStats> out) const {
  const Impl& im = *impl_;
  SCK_EXPECTS(base <= im.jobs.size() && count <= im.jobs.size() - base);
  SCK_EXPECTS(out.size() == count);
  if (count == 0) return;
  const std::span<const FaultJob> slice(im.jobs.data() + base, count);
  const NetlistCampaignOptions& options = im.options;

  if (options.backend == NetlistBackend::kScalar) {
    // Shard one fault per job; each worker owns a simulator over the
    // shared plan (units are stateful via set_fault).
    fault::parallel_shard(
        count, options.threads, [&im] { return NetlistSim(im.plan); },
        [&](NetlistSim& sim, std::size_t j) {
          sim.set_fu_fault(static_cast<int>(slice[j].fu), slice[j].site);
          out[j] = run_one_fault(im.graph, sim, options, base + j,
                                 im.shared_stream);
          sim.set_fu_fault(static_cast<int>(slice[j].fu), hw::FaultSite{});
        });
  } else if (options.backend == NetlistBackend::kBatched) {
    // Shard W-fault batches; each worker owns a batched simulator over
    // the shared plan plus a copy of one compiled reference evaluator.
    // The lane width only sizes the batches — per-job slots and the
    // job-order reduction are width-invariant.
    //
    // The reference "error" flag is never read (it is 0 by construction
    // on fault-free hardware), so the reference skips the check cone; the
    // prototype is compiled (topo + DCE) once and copied per worker.
    hw::dispatch_plane(im.lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (count + kW - 1) / kW;
      const DfgBatchEvaluatorT<P> ref_proto(im.graph, "error");
      struct BatchContext {
        NetlistBatchSimT<P> sim;
        DfgBatchEvaluatorT<P> ref;
        BatchContext(const ExecPlan& p, const DfgBatchEvaluatorT<P>& proto)
            : sim(p), ref(proto) {}
        BatchContext(const BatchContext&) = delete;
        BatchContext& operator=(const BatchContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&im, &ref_proto] { return BatchContext(im.plan, ref_proto); },
          [&](BatchContext& ctx, std::size_t b) {
            run_fault_batch(im.graph, ctx.sim, ctx.ref, slice, b * kW, base,
                            options, im.shared_stream, out);
          });
    });
  } else {
    hw::dispatch_plane(im.lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (count + kW - 1) / kW;
      // Broadcast the precomputed scalar reference outputs to this width's
      // planes (per call — one call per campaign single-host, one per
      // shard on a service worker).
      std::vector<hw::BatchWordT<P>> want_planes(im.want_values.size());
      const std::size_t num_outputs = im.netlist.outputs.size();
      for (std::size_t v = 0; v < im.want_values.size(); ++v) {
        const Node& n =
            im.graph.node(im.graph.outputs()[v % num_outputs]);
        want_planes[v] = hw::broadcast_word<P>(im.want_values[v], n.width);
      }

      struct IncrementalContext {
        NetlistIncrementalSimT<P> sim;
        IncrementalContext(const ExecPlan& p, const FaultCones& c)
            : sim(p, c) {}
        IncrementalContext(const IncrementalContext&) = delete;
        IncrementalContext& operator=(const IncrementalContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&im] { return IncrementalContext(im.plan, *im.cones); },
          [&](IncrementalContext& ctx, std::size_t b) {
            run_incremental_batch<P>(ctx.sim, im.trace, want_planes, slice,
                                     b * kW, options, out);
          });
    });
  }
}

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  const CampaignSliceRunner runner(graph, netlist, options);
  std::vector<fault::CampaignStats> per_job(runner.jobs().size());
  runner.run_slice(0, per_job.size(), per_job);
  return reduce_campaign_slices(runner.netlist(), runner.jobs(), per_job);
}

}  // namespace sck::hls

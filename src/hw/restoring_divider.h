// Restoring divider unit (n-bit unsigned quotient and remainder).
//
// Implementation: the classic shift/subtract recurrence. One internal
// (n+1)-bit subtractor — a ripple chain of full adders evaluating
// r + ~b + 1 — is *reused* on every iteration, so a single faulty cell
// perturbs several steps of the same division, exactly like real iterative
// divider hardware with a defective slice. The restore decision is the
// chain's carry-out (1 means r >= b).
//
// Faulty divisions can emit a remainder that no longer satisfies r < b (or
// even overflows n bits, hence the (n+1)-bit remainder accessor); that is
// precisely the q/r trade-off the inverse check `q*b + r == a` cannot see,
// which the paper's Table 1 shows as the lowest coverage of the four
// operators.
//
// Cell indexing: cells [0, n+1) are the subtractor's full adders, LSB first.
#pragma once

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// Quotient/remainder pair produced by the divider. The remainder is kept
/// at n+1 bits because a faulty division may leave it out of range.
struct DivResult {
  Word quotient = 0;
  Word remainder = 0;
};

/// Lane-packed quotient/remainder planes (remainder carries n+1 planes).
template <typename P>
struct BatchDivResultT {
  BatchWordT<P> quotient;
  BatchWordT<P> remainder;
};
using BatchDivResult = BatchDivResultT<LaneMask>;

/// n-bit restoring divider with an injectable cell fault in its subtractor.
class RestoringDivider : public FaultableUnit {
 public:
  explicit RestoringDivider(int width) : FaultableUnit(width) {
    SCK_EXPECTS(width + 1 <= kMaxWidth);
  }

  [[nodiscard]] int cell_count() const override { return width() + 1; }
  [[nodiscard]] CellKind cell_kind(int) const override {
    return CellKind::kFullAdder;
  }

  /// a / b and a % b, unsigned, b != 0 (checked).
  [[nodiscard]] DivResult divide(Word a, Word b) const {
    const int n = width();
    SCK_EXPECTS(trunc(b, n) != 0);
    a = trunc(a, n);
    b = trunc(b, n);
    const int m = n + 1;  // subtractor width
    const Word mm = mask(m);
    Word r = 0;
    Word q = 0;
    for (int i = n - 1; i >= 0; --i) {
      r = trunc((r << 1) | bit(a, i), m);
      bool no_borrow = false;
      const Word diff = sub_chain(r, b, mm, no_borrow);
      if (no_borrow) {
        r = diff;
        q |= Word{1} << i;
      }
    }
    return DivResult{q, r};
  }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------
  //
  // The restore decision becomes a per-lane select mask: the shared
  // subtractor chain is evaluated once per iteration for all lanes (exactly
  // the cells the scalar path touches every iteration), and each lane
  // keeps or discards the difference according to its own carry-out.
  // Lanes with a zero divisor are well-defined (q = all-ones, r ends at
  // a's last window) but meaningless; callers mask them out like the
  // scalar drivers skip b == 0.
  template <typename P>
  [[nodiscard]] BatchDivResultT<P> divide_batch(const BatchWordT<P>& a,
                                                const BatchWordT<P>& b) const {
    const int n = width();
    const int m = n + 1;
    BatchWordT<P> nb;
    for (int i = 0; i < m; ++i) nb[i] = ~b[i];

    BatchDivResultT<P> out;
    BatchWordT<P>& q = out.quotient;
    BatchWordT<P>& r = out.remainder;
    for (int i = n - 1; i >= 0; --i) {
      for (int k = m - 1; k > 0; --k) r[k] = r[k - 1];
      r[0] = a[i];
      // diff = r - b on the shared (possibly faulty) chain.
      P carry = plane_ones<P>();
      BatchWordT<P> diff;
      for (int k = 0; k < m; ++k) {
        const LaneDuoT<P> o = fa_batch(k, r[k], nb[k], carry);
        diff[k] = o.out0;
        carry = o.out1;
      }
      const P no_borrow = carry;
      for (int k = 0; k < m; ++k) {
        r[k] = (no_borrow & diff[k]) | (~no_borrow & r[k]);
      }
      q[i] = no_borrow;
    }
    return out;
  }

 private:
  /// r - b on the internal (n+1)-bit chain; `no_borrow` is the carry-out
  /// (true iff r >= b in the fault-free case).
  [[nodiscard]] Word sub_chain(Word r, Word b, Word chain_mask,
                               bool& no_borrow) const {
    const Word nb = ~b & chain_mask;
    unsigned carry = 1;
    Word diff = 0;
    const int m = width() + 1;
    for (int i = 0; i < m; ++i) {
      const unsigned row = bit(r, i) | (bit(nb, i) << 1) | (carry << 2);
      const unsigned out = eval_cell(i, kFullAdderLut, row);
      diff |= static_cast<Word>(out & 1u) << i;
      carry = (out >> 1) & 1u;
    }
    no_borrow = carry != 0;
    return diff;
  }
};

}  // namespace sck::hw

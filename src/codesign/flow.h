// The reliable co-design flow of the paper's Fig. 3, end to end: from a
// (self-checking) specification to a hardware implementation — via our
// behavioural-synthesis substrate — and to a software implementation —
// via the templated kernels running on the host. The flow evaluates the
// same three FIR variants Table 3 compares:
//
//   kPlain     the unprotected specification,
//   kSck       SCK<int> data types (class-based CED, transparent but
//              expensive in hardware),
//   kEmbedded  hand-embedded accumulation checks.
#pragma once

#include <string>
#include <vector>

#include "fault/stats.h"
#include "hls/area_time.h"
#include "hls/builder.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"

namespace sck::codesign {

enum class Variant : unsigned char { kPlain, kSck, kEmbedded };

[[nodiscard]] constexpr std::string_view to_string(Variant v) {
  switch (v) {
    case Variant::kPlain:
      return "FIR";
    case Variant::kSck:
      return "FIR with SCK";
    case Variant::kEmbedded:
      return "FIR embedded SCK";
  }
  return "?";
}

/// Hardware leg: synthesize one FIR variant under one objective.
struct HwDesign {
  Variant variant = Variant::kPlain;
  bool min_area = true;
  hls::Netlist netlist;
  hls::HwReport report;
};

[[nodiscard]] HwDesign synthesize_fir(const hls::FirSpec& spec,
                                      Variant variant, bool min_area);

/// Software leg: run the variant on the host over a fixed workload.
struct SwReport {
  Variant variant = Variant::kPlain;
  double seconds = 0.0;
  double ratio_vs_plain = 1.0;
  /// Static data-path operation count per sample (code-size proxy; the
  /// paper's binary sizes are dominated by the runtime and nearly equal).
  int ops_per_sample = 0;
  unsigned checksum = 0;  ///< anti-DCE output fold, also a determinism check
};

[[nodiscard]] std::vector<SwReport> measure_fir_sw(
    const std::vector<int>& coeffs, std::size_t samples);

/// The full Fig. 3 flow: all six hardware designs plus the three software
/// measurements for one FIR specification.
struct FlowReport {
  std::vector<HwDesign> hardware;  // 3 variants x {min-area, min-latency}
  std::vector<SwReport> software;  // 3 variants
};

[[nodiscard]] FlowReport run_fir_flow(const hls::FirSpec& spec,
                                      std::size_t sw_samples);

/// Reliability leg of the design-space exploration: the realization-level
/// fault coverage of one synthesized design, measured by sweeping its
/// complete FU stuck-at universe through the system-level campaign engine
/// (hls/netlist_campaign.h — by default the 64-lane bit-plane netlist
/// backend, 64 faults per sweep, multithreaded; bit-identical to the
/// scalar interpreter at any lane packing and thread count).
struct CoverageReport {
  Variant variant = Variant::kPlain;
  bool min_area = true;
  fault::CampaignStats stats;
  std::uint64_t faults = 0;

  [[nodiscard]] double coverage() const { return stats.coverage(); }
};

/// Evaluate every design of `flow` (same spec that produced it). This is
/// the third DSE axis next to area/latency and software overhead: which
/// variant buys how much realization-level coverage for its cost.
[[nodiscard]] std::vector<CoverageReport> evaluate_flow_coverage(
    const hls::FirSpec& spec, const FlowReport& flow,
    const hls::NetlistCampaignOptions& options);

}  // namespace sck::codesign

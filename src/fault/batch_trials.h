// Bit-parallel twins of the trial functors in fault/trials.h: the same
// checked operation and the same worst-case unit allocation, evaluated for
// W input pairs per call (one per lane of the plane word P) through the
// units' *_batch APIs.
//
// Each functor is lane-for-lane identical to its scalar twin: lane L of the
// returned LaneVerdict classifies exactly like the scalar trial on lane L's
// operands (tests/test_batch.cpp proves this across the full fault
// universe). Golden references are computed with the fault-free plane
// arithmetic of hw/batch.h instead of per-lane host loops.
//
// The verdict logic lives in the fault/verdict.h detail::*_verdict
// helpers, parameterized on which unit instance executes the nominal
// operation and which executes the hidden control. The functors here bind
// both roles to the same (faulty) unit — the paper's worst case;
// core/sck_batch_trials.h binds them through an AluPool's allocation
// policy. One implementation serves both, so a fix to a check recipe
// cannot desynchronize the two engines.
//
// Unlike the scalar functors (which hard-code ArrayMultiplier /
// RestoringDivider), the batched multiplier and divider trials are
// templated over the unit types so the architecture-ablation benches can
// drive carry-save multipliers and non-restoring dividers through the same
// engine.
#pragma once

#include "common/word.h"
#include "fault/batch.h"
#include "fault/technique.h"
#include "fault/trials.h"
#include "fault/verdict.h"
#include "hw/comparator.h"

namespace sck::fault {

/// Checked addition, batched (see AddTrial). Worst case: nominal and
/// control share one (possibly faulty) adder.
template <typename Adder>
struct AddBatchTrial {
  const Adder& adder;
  Technique tech = Technique::kTech1;

  template <typename P>
  [[nodiscard]] LaneVerdictT<P> operator()(const hw::BatchWordT<P>& a,
                                           const hw::BatchWordT<P>& b) const {
    return detail::add_verdict(adder, adder, tech, a, b);
  }
};

/// Checked subtraction, batched (see SubTrial).
template <typename Adder>
struct SubBatchTrial {
  const Adder& adder;
  Technique tech = Technique::kTech1;

  template <typename P>
  [[nodiscard]] LaneVerdictT<P> operator()(const hw::BatchWordT<P>& a,
                                           const hw::BatchWordT<P>& b) const {
    return detail::sub_verdict(adder, adder, tech, a, b);
  }
};

/// Checked multiplication, batched (see MulTrial). Both products on the
/// shared multiplier; negation and closing addition on the adder.
template <typename Mult, typename Adder>
struct MulBatchTrial {
  const Mult& mult;
  const Adder& adder;
  Technique tech = Technique::kTech1;

  template <typename P>
  [[nodiscard]] LaneVerdictT<P> operator()(const hw::BatchWordT<P>& a,
                                           const hw::BatchWordT<P>& b) const {
    return detail::mul_verdict(mult, mult, adder, tech, a, b);
  }
};

/// Checked division, batched (see DivTrial). Lanes with a zero divisor
/// compute harmlessly but meaninglessly; campaigns must run with
/// skip_b_zero so those lanes never enter the statistics.
template <typename Divider, typename Mult, typename Adder>
struct DivBatchTrial {
  const Divider& divider;
  const Mult& mult;
  const Adder& adder;
  Technique tech = Technique::kTech1;

  template <typename P>
  [[nodiscard]] LaneVerdictT<P> operator()(const hw::BatchWordT<P>& a,
                                           const hw::BatchWordT<P>& b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    hw::BatchWordT<P> golden_q;
    hw::BatchWordT<P> golden_r;
    hw::golden_divmod(a, b, n, golden_q, golden_r);
    const hw::BatchDivResultT<P> dr = divider.divide_batch(a, b);
    hw::BatchWordT<P> q;
    hw::BatchWordT<P> r;  // output port is n bits wide, like the scalar trial
    for (int i = 0; i < n; ++i) {
      q[i] = dr.quotient[i];
      r[i] = dr.remainder[i];
    }
    P ok = hw::plane_ones<P>();
    if (uses_tech1(tech)) {
      const hw::BatchWordT<P> op1p = adder.add_batch(mult.mul_batch(q, b), r);
      ok &= hw::equal_batch(op1p, a, n);
    }
    if (uses_tech2(tech)) {
      const hw::BatchWordT<P> t = mult.mul_batch(adder.negate_batch(q), b);
      const hw::BatchWordT<P> op1p = adder.sub_batch(t, r);
      ok &= hw::is_zero_batch(adder.add_batch(a, op1p), n);
    }
    const P erroneous = ~(hw::equal_batch(q, golden_q, n) &
                          hw::equal_batch(r, golden_r, n));
    return LaneVerdictT<P>{erroneous, ~ok};
  }
};

}  // namespace sck::fault

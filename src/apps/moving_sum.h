// Streaming windowed moving sum, templated over the element type — the
// state-heavy streaming kernel of the extended experiments (hardware twin:
// hls::build_moving_sum). The window is kept in a ring buffer and the sum
// is maintained incrementally: y[k] = y[k-1] + x[k] - x[k-window].
#pragma once

#include <cstddef>
#include <vector>

#include "apps/embedded.h"
#include "common/assert.h"

namespace sck::apps {

template <typename T>
class MovingSum {
 public:
  explicit MovingSum(std::size_t window) : window_(window, T{}) {
    SCK_EXPECTS(!window_.empty());
  }

  /// Process one input sample and return the sum of the last `window`
  /// inputs (including this one).
  T step(T x) {
    T& oldest = window_[next_];
    sum_ = sum_ + x - oldest;
    oldest = x;
    next_ = (next_ + 1) % window_.size();
    return sum_;
  }

  void reset() {
    window_.assign(window_.size(), T{});
    sum_ = T{};
    next_ = 0;
  }

  [[nodiscard]] std::size_t window() const { return window_.size(); }

 private:
  std::vector<T> window_;
  T sum_{};
  std::size_t next_ = 0;
};

/// The embedded-checked moving sum: a plain long long data path whose
/// running-sum update is re-verified by the generic running difference
/// (apps/embedded.h) — the entering sample and the leaving sample each
/// feed the nominal and the check accumulator, one zero test per sample.
class EmbeddedCheckedMovingSum {
 public:
  explicit EmbeddedCheckedMovingSum(std::size_t window)
      : window_(window, 0) {
    SCK_EXPECTS(!window_.empty());
  }

  [[nodiscard]] CheckedValue step(long long x) {
    long long& oldest = window_[next_];
    sum_.add(x);
    sum_.sub(oldest);
    oldest = x;
    next_ = (next_ + 1) % window_.size();
    return CheckedValue{sum_.value(), sum_.error()};
  }

  void reset() {
    window_.assign(window_.size(), 0);
    sum_.reset();
    next_ = 0;
  }

 private:
  std::vector<long long> window_;
  RunningDifference<long long> sum_;
  std::size_t next_ = 0;
};

}  // namespace sck::apps

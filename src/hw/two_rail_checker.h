// Two-rail self-checking equality comparator.
//
// Everywhere else in the library the comparator that closes a check is
// assumed fault-free (hw/comparator.h). Classical self-checking design
// discharges that assumption with totally-self-checking (TSC) checkers:
// this module implements the standard two-rail checker tree so the
// assumption can be quantified instead of taken on faith.
//
// To compare words a and b, bit i forms the rail pair (a_i, NOT b_i): the
// pair is a valid two-rail codeword iff a_i == b_i. A tree of two-rail
// checker (TRC) nodes
//
//   f = (x1 & x2) | (y1 & y2)        g = (x1 & y2) | (y1 & x2)
//
// compresses pairs; the final output pair is valid (f != g) iff every input
// pair is valid, i.e. iff a == b. The TSC property: any single stuck-at
// fault inside the checker, exercised by valid (a == b) inputs, either
// leaves the output a correct codeword or produces the invalid 00/11 pair —
// it can never silently report "unequal inputs" as equal *for code inputs*.
// For non-code inputs (a != b) a checker fault can mask the mismatch; the
// bench quantifies both behaviours.
//
// Cell indexing:
//   [0, n)          inverter cells for the b rails (XOR with constant 1)
//   [n, n + 6(n-1)) TRC nodes in tree order, 6 gates each:
//                   AND(x1,x2) AND(y1,y2) OR->f AND(x1,y2) AND(y1,x2) OR->g
#pragma once

#include <utility>
#include <vector>

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// Output rail pair of the checker. Valid (f != g) means "all pairs valid",
/// i.e. the compared words were equal; f == g flags either a data mismatch
/// or an internal checker fault.
struct RailPair {
  unsigned f = 0;
  unsigned g = 0;

  [[nodiscard]] bool valid() const { return f != g; }
};

/// n-bit two-rail equality checker tree with an injectable cell fault.
class TwoRailChecker : public FaultableUnit {
 public:
  explicit TwoRailChecker(int width) : FaultableUnit(width) {
    SCK_EXPECTS(width >= 2);
  }

  [[nodiscard]] int cell_count() const override {
    return width() + 6 * (width() - 1);
  }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < cell_count());
    if (cell < width()) return CellKind::kXor;  // the b-rail inverters
    const int local = (cell - width()) % 6;
    return (local == 2 || local == 5) ? CellKind::kOr : CellKind::kAnd;
  }

  /// Compare a and b; the result pair is valid iff a == b (fault-free).
  [[nodiscard]] RailPair compare(Word a, Word b) const {
    const int n = width();
    // Rail pairs: (a_i, NOT b_i).
    std::vector<RailPair> pairs;
    pairs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      RailPair p;
      p.f = bit(a, i);
      p.g = eval_cell(i, kXorLut, bit(b, i) | (1u << 1)) & 1u;  // XOR with 1
      pairs.push_back(p);
    }
    // Balanced TRC tree.
    int cell = n;
    while (pairs.size() > 1) {
      std::vector<RailPair> next;
      next.reserve(pairs.size() / 2 + 1);
      for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        next.push_back(trc(pairs[i], pairs[i + 1], cell));
        cell += 6;
      }
      if (pairs.size() % 2 != 0) next.push_back(pairs.back());
      pairs = std::move(next);
    }
    SCK_ASSERT(cell == cell_count());
    return pairs.front();
  }

  /// Lane-packed output rail pair (see RailPair): valid lanes are f ^ g.
  template <typename P>
  struct BatchRailPairT {
    P f{};
    P g{};

    [[nodiscard]] P valid() const { return f ^ g; }
  };
  using BatchRailPair = BatchRailPairT<LaneMask>;

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  [[nodiscard]] BatchRailPairT<P> compare_batch(const BatchWordT<P>& a,
                                                const BatchWordT<P>& b) const {
    const int n = width();
    std::vector<BatchRailPairT<P>> pairs;
    pairs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      BatchRailPairT<P> p;
      p.f = a[i];
      p.g = xor_batch(i, b[i], plane_ones<P>());  // XOR with constant 1
      pairs.push_back(p);
    }
    int cell = n;
    while (pairs.size() > 1) {
      std::vector<BatchRailPairT<P>> next;
      next.reserve(pairs.size() / 2 + 1);
      for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        next.push_back(trc_batch(pairs[i], pairs[i + 1], cell));
        cell += 6;
      }
      if (pairs.size() % 2 != 0) next.push_back(pairs.back());
      pairs = std::move(next);
    }
    SCK_ASSERT(cell == cell_count());
    return pairs.front();
  }

 private:
  template <typename P>
  [[nodiscard]] BatchRailPairT<P> trc_batch(const BatchRailPairT<P>& p,
                                            const BatchRailPairT<P>& q,
                                            int first_cell) const {
    const P t1 = and_batch(first_cell + 0, p.f, q.f);
    const P t2 = and_batch(first_cell + 1, p.g, q.g);
    const P f = or_batch(first_cell + 2, t1, t2);
    const P t3 = and_batch(first_cell + 3, p.f, q.g);
    const P t4 = and_batch(first_cell + 4, p.g, q.f);
    const P g = or_batch(first_cell + 5, t3, t4);
    return BatchRailPairT<P>{f, g};
  }

  [[nodiscard]] RailPair trc(const RailPair& p, const RailPair& q,
                             int first_cell) const {
    const unsigned t1 =
        eval_cell(first_cell + 0, kAndLut, p.f | (q.f << 1)) & 1u;
    const unsigned t2 =
        eval_cell(first_cell + 1, kAndLut, p.g | (q.g << 1)) & 1u;
    const unsigned f =
        eval_cell(first_cell + 2, kOrLut, t1 | (t2 << 1)) & 1u;
    const unsigned t3 =
        eval_cell(first_cell + 3, kAndLut, p.f | (q.g << 1)) & 1u;
    const unsigned t4 =
        eval_cell(first_cell + 4, kAndLut, p.g | (q.f << 1)) & 1u;
    const unsigned g =
        eval_cell(first_cell + 5, kOrLut, t3 | (t4 << 1)) & 1u;
    return RailPair{f, g};
  }
};

}  // namespace sck::hw

// Adversarial recovery suite for the shard write-ahead journal: torn
// tails truncated at EVERY byte boundary, bit flips anywhere in the file,
// duplicate records, fingerprint/geometry mismatches — recovery must
// salvage exactly the valid record prefix and never trust anything after
// the first inconsistent byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/journal.h"

namespace sck::store {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr Fingerprint kKey{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
constexpr std::uint64_t kJobs = 1536;  // three 512-job shards

/// Distinct, recognizable per-job stats for shard `id`.
[[nodiscard]] std::vector<fault::CampaignStats> stats_for(std::uint64_t id,
                                                          std::size_t count) {
  std::vector<fault::CampaignStats> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].silent_correct = id * 1000 + i;
    out[i].detected_correct = id * 2000 + i;
    out[i].detected_erroneous = id * 3000 + i;
    out[i].masked = id * 4000 + i;
  }
  return out;
}

void write_file(const fs::path& p, const std::vector<unsigned char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

[[nodiscard]] std::vector<unsigned char> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void append_bytes(std::vector<unsigned char>& out,
                  const std::vector<unsigned char>& more) {
  out.insert(out.end(), more.begin(), more.end());
}

/// Header + records for shards 0 and 1, byte-exact as the daemon would
/// have written them.
[[nodiscard]] std::vector<unsigned char> two_record_file() {
  std::vector<unsigned char> bytes = serialize_journal_header(kKey, kJobs);
  append_bytes(bytes, serialize_journal_record(0, 0, stats_for(0, 512)));
  append_bytes(bytes, serialize_journal_record(1, 512, stats_for(1, 512)));
  return bytes;
}

// ---- the happy path --------------------------------------------------------

TEST(Journal, FreshJournalIsEmptyAndUsable) {
  const fs::path dir = fresh_dir("sck_journal_fresh");
  ShardJournal j((dir / "a.journal").string(), kKey, kJobs);
  EXPECT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().shards.empty());
  EXPECT_FALSE(j.recovery().reset);
  EXPECT_EQ(j.recovery().truncated_bytes, 0u);
  EXPECT_EQ(j.recovery().duplicates, 0u);
}

// An empty FILE (created, crashed before the header landed) is also a
// clean slate, not an error.
TEST(Journal, EmptyFileRecoversAsEmpty) {
  const fs::path dir = fresh_dir("sck_journal_empty");
  const fs::path p = dir / "a.journal";
  write_file(p, {});
  ShardJournal j(p.string(), kKey, kJobs);
  EXPECT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().shards.empty());
  EXPECT_FALSE(j.recovery().reset);
}

TEST(Journal, AppendThenRecoverRoundtrips) {
  const fs::path dir = fresh_dir("sck_journal_roundtrip");
  const fs::path p = dir / "a.journal";
  {
    ShardJournal j(p.string(), kKey, kJobs);
    ASSERT_TRUE(j.usable());
    EXPECT_TRUE(j.append(0, 0, stats_for(0, 512)));
    EXPECT_TRUE(j.append(2, 1024, stats_for(2, 512)));
    EXPECT_TRUE(j.append(1, 512, stats_for(1, 512)));
  }
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  const JournalRecovery& r = j.recovery();
  ASSERT_EQ(r.shards.size(), 3u);
  EXPECT_EQ(r.truncated_bytes, 0u);
  // Append order preserved (0, 2, 1), every byte of every slice intact.
  EXPECT_EQ(r.shards[0].shard_id, 0u);
  EXPECT_EQ(r.shards[1].shard_id, 2u);
  EXPECT_EQ(r.shards[2].shard_id, 1u);
  EXPECT_EQ(r.shards[1].base, 1024u);
  EXPECT_EQ(r.shards[0].per_job, stats_for(0, 512));
  EXPECT_EQ(r.shards[1].per_job, stats_for(2, 512));
  EXPECT_EQ(r.shards[2].per_job, stats_for(1, 512));
}

TEST(Journal, RemoveUnlinksTheFile) {
  const fs::path dir = fresh_dir("sck_journal_remove");
  const fs::path p = dir / "a.journal";
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.append(0, 0, stats_for(0, 512)));
  ASSERT_TRUE(fs::exists(p));
  j.remove();
  EXPECT_FALSE(fs::exists(p));
}

// ---- torn tails ------------------------------------------------------------

// The crash-atomicity contract, exhaustively: cut the file at EVERY byte
// length and recover. The salvage must be exactly the complete-record
// prefix — never a partial record, never a crash.
TEST(Journal, TruncationAtEveryByteRecoversTheRecordPrefix) {
  const fs::path dir = fresh_dir("sck_journal_torn");
  const std::vector<unsigned char> full = two_record_file();
  const std::size_t header = serialize_journal_header(kKey, kJobs).size();
  const std::size_t record0 =
      serialize_journal_record(0, 0, stats_for(0, 512)).size();

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const fs::path p = dir / "torn.journal";
    write_file(p, std::vector<unsigned char>(full.begin(),
                                             full.begin() +
                                                 static_cast<std::ptrdiff_t>(
                                                     cut)));
    ShardJournal j(p.string(), kKey, kJobs);
    ASSERT_TRUE(j.usable()) << "cut at " << cut;
    const JournalRecovery& r = j.recovery();
    std::size_t want = 0;
    if (cut >= header + record0) ++want;
    if (cut == full.size()) ++want;
    ASSERT_EQ(r.shards.size(), want) << "cut at " << cut;
    if (want >= 1) {
      EXPECT_EQ(r.shards[0].shard_id, 0u);
      EXPECT_EQ(r.shards[0].per_job, stats_for(0, 512)) << "cut at " << cut;
    }
    // A torn header is a reset (the file was never provably ours); a torn
    // record tail is plain truncation.
    if (cut < header) {
      EXPECT_EQ(r.reset, cut != 0) << "cut at " << cut;
    } else {
      EXPECT_FALSE(r.reset) << "cut at " << cut;
      EXPECT_EQ(r.truncated_bytes,
                cut - header - want * record0)  // records are equal-sized
          << "cut at " << cut;
    }
    // Recovery must leave the file append-clean: the torn tail is GONE.
    EXPECT_TRUE(j.append(7, 1024, stats_for(7, 512))) << "cut at " << cut;
  }
}

// One flipped bit anywhere in a record invalidates it AND everything
// after it — a desynchronized journal cannot be resynced.
TEST(Journal, BitFlipInFirstRecordDropsBothRecords) {
  const fs::path dir = fresh_dir("sck_journal_flip1");
  const std::size_t header = serialize_journal_header(kKey, kJobs).size();
  const std::size_t record0 =
      serialize_journal_record(0, 0, stats_for(0, 512)).size();
  // Sample a spread of offsets across record 0 (length prefix, body,
  // checksum) — every one must take the whole tail down with it.
  for (const std::size_t at :
       {header, header + 9, header + record0 / 2, header + record0 - 1}) {
    std::vector<unsigned char> bytes = two_record_file();
    bytes[at] ^= 0x10;
    const fs::path p = dir / "flip.journal";
    write_file(p, bytes);
    ShardJournal j(p.string(), kKey, kJobs);
    ASSERT_TRUE(j.usable()) << "flip at " << at;
    EXPECT_TRUE(j.recovery().shards.empty()) << "flip at " << at;
    EXPECT_FALSE(j.recovery().reset);
    EXPECT_GT(j.recovery().truncated_bytes, 0u);
  }
}

TEST(Journal, BitFlipInSecondRecordKeepsTheFirst) {
  const fs::path dir = fresh_dir("sck_journal_flip2");
  const std::size_t header = serialize_journal_header(kKey, kJobs).size();
  const std::size_t record0 =
      serialize_journal_record(0, 0, stats_for(0, 512)).size();
  std::vector<unsigned char> bytes = two_record_file();
  bytes[header + record0 + 20] ^= 0x01;  // inside record 1's body
  const fs::path p = dir / "flip.journal";
  write_file(p, bytes);
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  ASSERT_EQ(j.recovery().shards.size(), 1u);
  EXPECT_EQ(j.recovery().shards[0].shard_id, 0u);
  EXPECT_EQ(j.recovery().shards[0].per_job, stats_for(0, 512));
}

// A record whose geometry points outside the job universe is invalid even
// when its checksum verifies (it was written against different geometry).
TEST(Journal, OutOfRangeRecordIsRejected) {
  const fs::path dir = fresh_dir("sck_journal_range");
  std::vector<unsigned char> bytes = serialize_journal_header(kKey, kJobs);
  append_bytes(bytes, serialize_journal_record(9, kJobs, stats_for(9, 512)));
  const fs::path p = dir / "range.journal";
  write_file(p, bytes);
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().shards.empty());
  EXPECT_GT(j.recovery().truncated_bytes, 0u);
}

// ---- duplicates ------------------------------------------------------------

// A pre-crash re-queue can legally journal the same shard twice; recovery
// keeps the FIRST copy (determinism makes them byte-identical in real
// runs — here they differ on purpose to prove which one wins).
TEST(Journal, DuplicateShardRecordsFirstWins) {
  const fs::path dir = fresh_dir("sck_journal_dup");
  std::vector<unsigned char> bytes = serialize_journal_header(kKey, kJobs);
  append_bytes(bytes, serialize_journal_record(0, 0, stats_for(1, 512)));
  append_bytes(bytes, serialize_journal_record(0, 0, stats_for(2, 512)));
  append_bytes(bytes, serialize_journal_record(1, 512, stats_for(3, 512)));
  const fs::path p = dir / "dup.journal";
  write_file(p, bytes);
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  const JournalRecovery& r = j.recovery();
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_EQ(r.duplicates, 1u);
  EXPECT_EQ(r.shards[0].shard_id, 0u);
  EXPECT_EQ(r.shards[0].per_job, stats_for(1, 512));  // the FIRST copy
  EXPECT_EQ(r.shards[1].shard_id, 1u);
}

// ---- header mismatches: always a full reset --------------------------------

TEST(Journal, FingerprintMismatchResetsTheJournal) {
  const fs::path dir = fresh_dir("sck_journal_fp");
  const fs::path p = dir / "a.journal";
  write_file(p, two_record_file());
  const Fingerprint other{kKey.hi, kKey.lo ^ 1};
  ShardJournal j(p.string(), other, kJobs);
  ASSERT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().reset);
  EXPECT_TRUE(j.recovery().shards.empty());
  // The file was rewritten for the NEW key: a reopen under it is clean.
  ShardJournal again(p.string(), other, kJobs);
  EXPECT_FALSE(again.recovery().reset);
  EXPECT_TRUE(again.recovery().shards.empty());
}

TEST(Journal, JobCountMismatchResetsTheJournal) {
  const fs::path dir = fresh_dir("sck_journal_jobs");
  const fs::path p = dir / "a.journal";
  write_file(p, two_record_file());
  ShardJournal j(p.string(), kKey, kJobs + 512);
  ASSERT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().reset);
  EXPECT_TRUE(j.recovery().shards.empty());
}

TEST(Journal, CorruptHeaderResetsTheJournal) {
  const fs::path dir = fresh_dir("sck_journal_hdr");
  std::vector<unsigned char> bytes = two_record_file();
  bytes[3] ^= 0x80;  // inside the magic
  const fs::path p = dir / "a.journal";
  write_file(p, bytes);
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().reset);
  EXPECT_TRUE(j.recovery().shards.empty());
}

TEST(Journal, FutureFormatVersionResetsTheJournal) {
  const fs::path dir = fresh_dir("sck_journal_ver");
  std::vector<unsigned char> bytes = two_record_file();
  bytes[8] ^= 0x02;  // version field (first byte after the magic)
  // Header checksum now fails too — either way, a reset.
  const fs::path p = dir / "a.journal";
  write_file(p, bytes);
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  EXPECT_TRUE(j.recovery().reset);
  EXPECT_TRUE(j.recovery().shards.empty());
}

// ---- append after recovery -------------------------------------------------

// Crash, recover, keep journaling, crash, recover: the second recovery
// must see the salvaged prefix AND the post-recovery appends.
TEST(Journal, AppendAfterTornRecoveryThenRecoverAgain) {
  const fs::path dir = fresh_dir("sck_journal_again");
  const fs::path p = dir / "a.journal";
  {
    std::vector<unsigned char> bytes = two_record_file();
    bytes.resize(bytes.size() - 5);  // torn mid-record-1
    write_file(p, bytes);
  }
  {
    ShardJournal j(p.string(), kKey, kJobs);
    ASSERT_TRUE(j.usable());
    ASSERT_EQ(j.recovery().shards.size(), 1u);
    EXPECT_TRUE(j.append(2, 1024, stats_for(2, 512)));
  }
  ShardJournal j(p.string(), kKey, kJobs);
  ASSERT_TRUE(j.usable());
  const JournalRecovery& r = j.recovery();
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_EQ(r.shards[0].shard_id, 0u);
  EXPECT_EQ(r.shards[1].shard_id, 2u);
  EXPECT_EQ(r.shards[1].per_job, stats_for(2, 512));
  EXPECT_EQ(r.truncated_bytes, 0u);
}

// ---- degraded mode ---------------------------------------------------------

// An uncreatable journal (missing directory) degrades to journal-less:
// usable() false, appends refused, nothing crashes.
TEST(Journal, UnwritablePathDegradesGracefully) {
  const fs::path dir = fresh_dir("sck_journal_degraded");
  const fs::path p = dir / "no-such-subdir" / "a.journal";
  ShardJournal j(p.string(), kKey, kJobs);
  EXPECT_FALSE(j.usable());
  EXPECT_FALSE(j.append(0, 0, stats_for(0, 512)));
  j.remove();  // harmless on a dead journal
}

}  // namespace
}  // namespace sck::store

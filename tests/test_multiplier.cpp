// Unit tests for the array multiplier: fault-free equivalence with ring
// multiplication, cell inventory, and fault observability.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hw/array_multiplier.h"

namespace sck::hw {
namespace {

TEST(ArrayMultiplier, FaultFreeMatchesReferenceExhaustive) {
  for (int n = 1; n <= 6; ++n) {
    const ArrayMultiplier m(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        ASSERT_EQ(m.mul(a, b), mul(a, b, n))
            << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(ArrayMultiplier, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x5eed10);
  for (const int n : {8, 12, 16, 24, 32}) {
    const ArrayMultiplier m(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = rng.bounded(Word{1} << n);
      ASSERT_EQ(m.mul(a, b), mul(a, b, n)) << "n=" << n;
    }
  }
}

TEST(ArrayMultiplier, SignedRingSemantics) {
  // Two's-complement products come out right through the unsigned ring.
  const int n = 8;
  const ArrayMultiplier m(n);
  EXPECT_EQ(to_signed(m.mul(from_signed(-3, n), from_signed(5, n)), n), -15);
  EXPECT_EQ(to_signed(m.mul(from_signed(-4, n), from_signed(-6, n)), n), 24);
}

TEST(ArrayMultiplier, CellInventoryMatchesFormula) {
  for (const int n : {1, 2, 3, 4, 8, 16}) {
    const ArrayMultiplier m(n);
    const int and_cells = n * (n + 1) / 2;
    const int fa_cells = n * (n - 1) / 2;
    EXPECT_EQ(m.cell_count(), and_cells + fa_cells) << "n=" << n;
    EXPECT_EQ(m.fault_universe().size(),
              static_cast<std::size_t>(6 * and_cells + 32 * fa_cells))
        << "n=" << n;
    for (int c = 0; c < m.cell_count(); ++c) {
      EXPECT_EQ(m.cell_kind(c),
                c < and_cells ? CellKind::kAnd : CellKind::kFullAdder);
    }
  }
}

TEST(ArrayMultiplier, ObservabilityMatchesStructure) {
  // A fault corrupts some product iff its faulty truth table differs from
  // the golden one on a reachable row (e.g. the first FA of each
  // accumulation chain never sees carry-in 1) and on a non-discarded output
  // (the carry out of the last FA of each row would feed product bit n,
  // which the low-word product drops).
  const int n = 4;
  ArrayMultiplier m(n);
  const int and_cells = n * (n + 1) / 2;
  std::vector<int> last_fa_of_row;
  int fa_cursor = and_cells;
  for (int i = 1; i < n; ++i) {
    fa_cursor += n - i;
    last_fa_of_row.push_back(fa_cursor - 1);
  }

  CellUsageRecorder usage(m.cell_count());
  m.set_recorder(&usage);
  const Word limit = Word{1} << n;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) (void)m.mul(a, b);
  }
  m.set_recorder(nullptr);

  for (const FaultSite& f : m.fault_universe()) {
    m.set_fault(f);
    bool changed = false;
    for (Word a = 0; a < limit && !changed; ++a) {
      for (Word b = 0; b < limit && !changed; ++b) {
        changed = m.mul(a, b) != mul(a, b, n);
      }
    }
    m.clear_fault();

    const CellKind kind = m.cell_kind(f.cell);
    const CellLut faulty = faulty_cell_lut(kind, f.line, f.stuck_value);
    const CellLut golden = golden_lut(kind);
    const bool cout_discarded =
        std::find(last_fa_of_row.begin(), last_fa_of_row.end(), f.cell) !=
        last_fa_of_row.end();
    bool expected = false;
    for (int row = 0; row < cell_rows(kind) && !expected; ++row) {
      const unsigned diff = faulty[static_cast<std::size_t>(row)] ^
                            golden[static_cast<std::size_t>(row)];
      if (diff == 0 || !usage.seen(f.cell, static_cast<unsigned>(row))) continue;
      for (int out = 0; out < cell_outputs(kind); ++out) {
        if (((diff >> out) & 1u) != 0 && !(out == 1 && cout_discarded)) {
          expected = true;
        }
      }
    }
    EXPECT_EQ(changed, expected) << to_string(f);
  }
}

TEST(ArrayMultiplier, FaultInAndGateOnlyAffectsMatchingOperandBits) {
  // AND cell 0 computes pp00 = a0 & b0; its output line (2) stuck-at-1
  // forces the partial product high and perturbs the product's bit 0.
  const int n = 4;
  ArrayMultiplier m(n);
  // AND cells are enumerated row-major starting at row i=0, j=0.
  m.set_fault(FaultSite{0, 2, true});  // output line stuck-at-1
  EXPECT_EQ(m.mul(0, 0), Word{1});     // pp00 forced high
  EXPECT_EQ(m.mul(1, 1), Word{1});     // correct product already has bit 0
  EXPECT_EQ(m.mul(2, 2), Word{5});     // 4 plus the forced bit 0
}

}  // namespace
}  // namespace sck::hw

#include "hls/netlist.h"

#include <algorithm>
#include <set>

#include "common/assert.h"

namespace sck::hls {

namespace {

/// Resolve where a consumer scheduled at `use_step` reads node `producer`.
Operand resolve_operand(const Dfg& g, const Schedule& s, const Binding& b,
                        NodeId producer, int use_step,
                        const std::vector<int>& input_index_of) {
  const Node& p = g.node(producer);
  Operand op;
  switch (p.op) {
    case Op::kConst:
      op.kind = Operand::Kind::kConst;
      op.value = p.value;
      return op;
    case Op::kInput:
      op.kind = Operand::Kind::kInput;
      op.index = input_index_of[static_cast<std::size_t>(producer)];
      return op;
    case Op::kReg:
      op.kind = Operand::Kind::kReg;
      op.index = b.reg(producer);
      return op;
    default: {
      SCK_ASSERT(is_scheduled_op(p.op));
      if (s.step(producer) == use_step) {
        // Same-step combinational chain (1-bit glue).
        op.kind = Operand::Kind::kWire;
        op.index = producer;
        return op;
      }
      const int reg = b.reg(producer);
      SCK_ASSERT(reg >= 0 && "consumed value was never registered");
      op.kind = Operand::Kind::kReg;
      op.index = reg;
      return op;
    }
  }
}

}  // namespace

Netlist generate_netlist(const Dfg& g, const Schedule& s, const Binding& b,
                         std::string name) {
  Netlist nl;
  nl.name = std::move(name);
  nl.num_steps = s.num_steps;
  nl.fus = b.fus;
  nl.regs = b.regs;

  // Data width: widest node in the graph.
  nl.data_width = 1;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    nl.data_width = std::max(nl.data_width, g.node(id).width);
  }

  // Input ports, in declaration order.
  std::vector<int> input_index_of(g.size(), -1);
  for (const NodeId in : g.inputs()) {
    input_index_of[static_cast<std::size_t>(in)] =
        static_cast<int>(nl.input_names.size());
    nl.input_names.push_back(g.node(in).name);
  }

  // Microcode, in dataflow order then stably by step.
  for (const NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) continue;
    MicroOp m;
    m.step = s.step(id);
    m.node = id;
    m.op = n.op;
    m.fu = b.fu(id);
    for (std::size_t k = 0; k < n.ins.size() && k < 2; ++k) {
      m.src[k] = resolve_operand(g, s, b, n.ins[k], m.step, input_index_of);
    }
    m.dst_reg = b.reg(id);
    nl.micro.push_back(m);
  }
  std::stable_sort(nl.micro.begin(), nl.micro.end(),
                   [](const MicroOp& a, const MicroOp& bb) {
                     return a.step < bb.step;
                   });

  // Primary outputs read their source's register (or constant/input).
  for (const NodeId out : g.outputs()) {
    const Node& n = g.node(out);
    OutputPort port;
    port.name = n.name;
    port.source =
        resolve_operand(g, s, b, n.ins[0], /*use_step=*/s.num_steps,
                        input_index_of);
    SCK_ASSERT(port.source.kind != Operand::Kind::kWire);
    nl.outputs.push_back(std::move(port));
  }

  // Architectural state updates at the end of the iteration.
  for (const NodeId reg : g.state_regs()) {
    const Node& n = g.node(reg);
    StateLoad load;
    load.dst_reg = b.reg(reg);
    load.source = resolve_operand(g, s, b, n.ins[0], /*use_step=*/s.num_steps,
                                  input_index_of);
    SCK_ASSERT(load.source.kind != Operand::Kind::kWire);
    nl.state_loads.push_back(load);
  }

  return nl;
}

std::vector<std::array<int, 2>> Netlist::fu_port_fanins() const {
  std::vector<std::set<std::pair<int, long long>>> port_sources[2];
  port_sources[0].resize(fus.size());
  port_sources[1].resize(fus.size());
  for (const MicroOp& m : micro) {
    if (m.fu < 0) continue;
    for (int p = 0; p < 2; ++p) {
      const Operand& src = m.src[static_cast<std::size_t>(p)];
      if (src.kind == Operand::Kind::kNone) continue;
      const auto key = std::pair<int, long long>{
          static_cast<int>(src.kind) * 1000000 + src.index, src.value};
      port_sources[p][static_cast<std::size_t>(m.fu)].insert(key);
    }
  }
  std::vector<std::array<int, 2>> fanins(fus.size(), {0, 0});
  for (std::size_t f = 0; f < fus.size(); ++f) {
    fanins[f][0] = static_cast<int>(port_sources[0][f].size());
    fanins[f][1] = static_cast<int>(port_sources[1][f].size());
  }
  return fanins;
}

std::vector<int> Netlist::reg_write_fanins() const {
  std::vector<std::set<int>> writers(regs.size());
  for (const MicroOp& m : micro) {
    if (m.dst_reg >= 0) {
      // Writers are FU outputs (or glue wires, keyed by node id offset).
      writers[static_cast<std::size_t>(m.dst_reg)].insert(
          m.fu >= 0 ? m.fu : 1000000 + m.node);
    }
  }
  for (const StateLoad& load : state_loads) {
    if (load.dst_reg >= 0) {
      writers[static_cast<std::size_t>(load.dst_reg)].insert(
          2000000 + static_cast<int>(load.source.kind) * 10000 +
          load.source.index);
    }
  }
  std::vector<int> out(regs.size(), 0);
  for (std::size_t r = 0; r < regs.size(); ++r) {
    out[r] = static_cast<int>(writers[r].size());
  }
  return out;
}

}  // namespace sck::hls

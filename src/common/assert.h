// Lightweight contract-checking macros (Expects/Ensures style, per the C++
// Core Guidelines I.6/I.8). Violations abort with a source location; checks
// stay enabled in release builds because the library is a measurement tool
// and silent corruption would invalidate every experiment downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sck::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace sck::detail

#define SCK_EXPECTS(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                              \
          : ::sck::detail::contract_violation("Precondition", #cond, __FILE__, \
                                              __LINE__))

#define SCK_ENSURES(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                               \
          : ::sck::detail::contract_violation("Postcondition", #cond, __FILE__, \
                                              __LINE__))

#define SCK_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::sck::detail::contract_violation("Invariant", #cond, __FILE__, \
                                              __LINE__))

// Marks code after an exhaustive switch over an enum. Unlike a `default` /
// trailing-return fallback, the switch stays coverage-checked: adding an
// enumerator without a case is a compile error (-Werror=switch), and
// reaching this line at runtime (a corrupted enum value) aborts instead of
// silently returning a placeholder.
#define SCK_UNREACHABLE()                                              \
  ::sck::detail::contract_violation("Unreachable", "covered switch",   \
                                    __FILE__, __LINE__)

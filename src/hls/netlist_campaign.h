// System-level fault-coverage evaluation on synthesized netlists.
//
// §3 of the paper concedes: "there is no available tool for evaluating the
// fault coverage of the final realization with respect to the on-line
// fault detection properties, yet the local fault coverage analysis ...
// can be used as an estimation". This module is that missing tool for our
// substrate: it sweeps the complete stuck-at fault universe of every
// functional unit of a generated netlist, drives each faulty configuration
// with a reproducible input stream, compares the data outputs against the
// fault-free reference model, and classifies every sample with the same
// four-way taxonomy as the unit-level campaigns — yielding the *final
// realization's* coverage, which the paper could only estimate.
//
// Two execution backends drive the sweep (hls/netlist_exec.h):
//   kScalar   the compiled scalar interpreter, one fault at a time;
//   kBatched  the 64-lane bit-plane engine — 64 faults per batch (lane =
//             fault, via per-lane LaneFaultSet hooks), each lane fed its
//             own seeded input stream, checked against the plane-wise Dfg
//             reference model (DfgBatchEvaluator).
// Both backends shard the fault universe through fault/parallel.h and
// reduce per-fault stats in fault-index order, so the result is
// bit-identical for ANY backend, lane packing and thread count
// (tests/test_netlist_batch.cpp proves it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/stats.h"
#include "hls/dfg.h"
#include "hls/netlist_sim.h"

namespace sck::hls {

/// Per-functional-unit coverage breakdown.
struct UnitCoverage {
  int fu_index = -1;
  std::string fu_name;
  std::size_t faults = 0;
  fault::CampaignStats stats;
};

struct NetlistCampaignResult {
  fault::CampaignStats aggregate;
  std::vector<UnitCoverage> per_unit;
  std::uint64_t fault_universe_size = 0;
};

/// Execution backend selection for the sweep (results are identical; the
/// batched engine packs 64 faults per evaluation and is the default).
enum class NetlistBackend : unsigned char { kScalar, kBatched };

struct NetlistCampaignOptions {
  int samples_per_fault = 32;  ///< stream length per injected fault
  std::uint64_t seed = 0x2005;
  int fault_stride = 1;  ///< evaluate every k-th fault of each unit
  /// Worker threads for the fault sweep (0 = all hardware threads). Each
  /// fault's input stream is derived from (seed, fault index), so the
  /// result is bit-identical for any thread count.
  int threads = 1;
  NetlistBackend backend = NetlistBackend::kBatched;
};

/// Sweep every FU fault of `netlist` (generated from `graph`), comparing
/// against the fault-free reference evaluation of `graph`. Netlists with a
/// CED "error" output use it as the detection flag; plain netlists (no
/// error output) report every erroneous sample as masked — the baseline
/// that shows what the checks buy.
[[nodiscard]] NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options);

}  // namespace sck::hls
